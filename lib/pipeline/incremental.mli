(** The incremental mining engine: from committed deltas to a fresh
    pattern set without a full re-mine.

    The engine caches the mined pattern set {e per gSpan root} — one
    group per frequent 1-edge seed of the most-generalized database
    [D_mg] ({!Tsg_core.Taxogram.result.root_groups}). Every pattern in a
    root's subtree contains the root's seed edge, so a delta graph can
    only affect the roots whose seed 1-edge it contains (after
    relabeling to most-general): those roots are marked {e dirty} and
    re-mined with {!Tsg_core.Taxogram.Spec.root_select}; every other
    group is provably unchanged — additions that lack the seed edge
    cannot add embeddings, removals that lack it cannot take support
    away — and is reused as-is.

    Two events invalidate the whole cache and force a full re-mine:
    the absolute support threshold [ceil (theta * db_size)] changing
    (every root's bar moved), and the absence or rejection of a state
    snapshot after a restart. Both are handled inside {!refresh}; the
    caller's loop is the same either way, and the resulting pattern set
    is byte-identical to a from-scratch mine of the present corpus
    (the headline property test).

    Between runs the engine persists to a {e state snapshot}: a
    CRC-trailed, atomically written file holding the watermark (the WAL
    sequence the groups describe), the threshold, the mining
    configuration, and every group with label {e names} rather than ids
    — so a restarted process, whatever its interning history, can adopt
    it. An unusable snapshot (corrupt, config drift, watermark ahead of
    the log) degrades to a full re-mine with a [PIPE003] warning, never
    an error. *)

type t

val create :
  corpus:Corpus.t ->
  config:Tsg_core.Taxogram.config ->
  exec:Tsg_util.Pool.Exec.t ->
  unit ->
  t
(** A fresh engine with an empty cache: the first {!refresh} is a full
    mine. [exec] is reused across re-mines. *)

val mined_seq : t -> int64
(** The corpus version the cached groups describe; [-1L] before the
    first mine (so an empty corpus at sequence [0L] still triggers
    one). *)

val dirty_count : t -> int
(** Roots currently marked dirty. *)

val mark_dirty : t -> Tsg_graph.Graph.t -> unit
(** Mark every root whose seed 1-edge the graph contains (after
    relabeling to most-general) dirty. Call with the graph each applied
    delta added or removed ({!Corpus.apply}'s [Ok] value). *)

type refresh_stats = {
  full : bool;  (** the cache was unusable; everything was re-mined *)
  roots_mined : int;  (** dirty (or, under [full], all) roots re-mined *)
  roots_cached : int;  (** clean groups reused untouched *)
  patterns : int;  (** pattern count after the refresh *)
  wall_s : float;
}

val refresh : t -> refresh_stats
(** Bring the cache up to the corpus head: re-mine the dirty roots (all
    of them, when the threshold moved or there is no cache), merge with
    the clean groups, clear the dirty set, and advance the watermark.
    Honors the ["pipeline.remine"] failpoint. A no-op (beyond the
    watermark) when nothing is dirty and a cache exists. *)

val patterns : t -> Tsg_core.Pattern.t list
(** The cached pattern set (all groups), unordered; {!render} for the
    canonical bytes. *)

val render : t -> string
(** The publishable artifact ({!Publish.render}) for the cached set
    against the current corpus size, stamped with the engine's WAL
    watermark as its epoch sequence (unstamped before the first
    {!refresh}). Equal pattern sets render equal stamp {e payloads}
    whatever the watermark ({!Tsg_query.Epoch.payload}). *)

(** {1 State snapshots} *)

val save_state : t -> string -> unit
(** Atomically persist watermark, threshold, configuration, and groups
    (labels by name, CRC trailer). *)

val state_watermark : string -> int64 option
(** The watermark a snapshot image claims, without validating the rest —
    the caller needs it {e before} replaying the WAL (records past the
    watermark must mark roots dirty as they are applied). [None] when
    the image is not a state snapshot. *)

val load_state : t -> string -> (unit, Tsg_util.Diagnostic.t) result
(** Adopt a snapshot image. Call after the corpus has been fully
    replayed (group label names resolve against the replayed tables).
    [Error] carries a [PIPE003] warning — corrupt image, configuration
    drift, watermark ahead of the corpus, unresolvable label — and
    leaves the engine cacheless, so the next {!refresh} mines fully. *)
