module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Label = Tsg_graph.Label
module Serial = Tsg_graph.Serial
module Taxonomy = Tsg_taxonomy.Taxonomy
module Diagnostic = Tsg_util.Diagnostic

type entry = { added_at : int64; graph : Graph.t }

type t = {
  c_taxonomy : Taxonomy.t;
  c_edge_labels : Label.t;
  mutable entries : entry list;  (* newest first *)
  mutable c_seq : int64;
}

let create ~taxonomy () =
  {
    c_taxonomy = taxonomy;
    c_edge_labels = Label.create ();
    entries = [];
    c_seq = 0L;
  }

let taxonomy t = t.c_taxonomy

let edge_labels t = t.c_edge_labels

let seq t = t.c_seq

let size t = List.length t.entries

let db t =
  Db.of_list (List.rev_map (fun e -> e.graph) t.entries)

let find t target =
  List.find_map
    (fun e -> if Int64.equal e.added_at target then Some e.graph else None)
    t.entries

let reject r fmt =
  Printf.ksprintf
    (fun msg ->
      Error
        (Diagnostic.makef ~rule:"PIPE001" Diagnostic.Error
           "delta %Ld rejected: %s" r.Wal.seq msg))
    fmt

let apply t (r : Wal.record) =
  if Int64.compare r.seq t.c_seq <= 0 then
    reject r "sequence %Ld is not past the corpus head %Ld" r.seq t.c_seq
  else begin
    (* rejected or not, the record consumes its sequence number: replay
       must stay aligned with the log position, and a rejection is as
       deterministic as an application *)
    t.c_seq <- r.seq;
    match r.op with
    | Wal.Remove target -> (
      let rec cut acc = function
        | [] -> None
        | e :: tl when Int64.equal e.added_at target ->
          Some (e.graph, List.rev_append acc tl)
        | e :: tl -> cut (e :: acc) tl
      in
      match cut [] t.entries with
      | Some (g, rest) ->
        t.entries <- rest;
        Ok g
      | None -> reject r "remove target %Ld is not in the corpus" target)
    | Wal.Add text -> (
      match
        Serial.parse_db ~node_labels:(Taxonomy.labels t.c_taxonomy)
          ~edge_labels:t.c_edge_labels text
      with
      | exception Serial.Parse_error (line, msg) ->
        reject r "graph line %d: %s" line msg
      | parsed -> (
        match Db.to_list parsed with
        | [ g ] ->
          let n = Taxonomy.label_count t.c_taxonomy in
          let bad = ref None in
          Array.iter
            (fun l -> if l >= n && !bad = None then bad := Some l)
            (Graph.node_labels g);
          (match !bad with
          | Some l ->
            reject r "node label %S is not a taxonomy concept"
              (Label.name (Taxonomy.labels t.c_taxonomy) l)
          | None ->
            t.entries <- { added_at = r.seq; graph = g } :: t.entries;
            Ok g)
        | gs -> reject r "payload holds %d graphs, expected 1" (List.length gs)))
  end

let to_serial t =
  Serial.db_to_string
    ~node_labels:(Taxonomy.labels t.c_taxonomy)
    ~edge_labels:t.c_edge_labels (db t)
