(** The write-ahead delta log: durable add/remove records for a changing
    graph corpus.

    Every corpus mutation is appended (and fsynced) here {e before} it is
    applied anywhere, so a crash at any instruction loses at most work
    that was never acknowledged. The file is append-only text framing
    binary-safe payloads:

    {v
    tsgwal 1
    <len:hex8> <crc:hex8> <payload><newline>
    ...
    v}

    [len] is the payload byte count and [crc] its CRC-32
    ({!Tsg_util.Checksum}), both fixed-width lower-case hex, so a reader
    can delimit and verify each record without trusting anything that
    follows it. Payloads:

    - [a <seq>\n<graph>] — add a graph, serialized in the gSpan text
      format ({!Tsg_graph.Serial}, one [t # 0] block, labels by name so
      the log is self-describing);
    - [d <seq> <target>] — remove the graph added by record [target].

    Sequence numbers are assigned by the writer, strictly increasing
    from 1; the highest durable sequence number is the {e corpus
    version} ({!Tsg_core.Checkpoint} stamps it into mining snapshots).

    A crash can tear the final frame. {!recover} tolerates this by
    construction: the torn tail is truncated and replay proceeds with
    the maximal valid prefix — never fatal. Corruption {e before} the
    tail (bit rot under committed records) is a different condition and
    is reported as a fatal [WAL002]. *)

exception Error of Tsg_util.Diagnostic.t
(** [WAL001] bad magic or version, [WAL002] corrupt frame mid-log,
    [WAL003] non-monotonic sequence numbers. *)

type op =
  | Add of string  (** graph in {!Tsg_graph.Serial} text form *)
  | Remove of int64  (** sequence number of the [Add] to undo *)

type record = { seq : int64; op : op }

(** {1 Appending} *)

type writer

val open_writer : string -> writer
(** Open [path] for appending, creating it (with a header) when missing
    or empty. The caller must have run {!recover} first on an existing
    file: the writer assumes the file ends on a frame boundary. *)

val append : writer -> record -> unit
(** Frame, write, and fsync one record; on return the record is durable.
    Failpoints: ["wal.append"] fires before the write (a crash here
    loses the record entirely), ["wal.fsync"] between write and fsync (a
    crash here may leave a torn tail for {!recover} to truncate). *)

val close : writer -> unit

(** {1 Recovery and scanning} *)

type tail =
  | Clean  (** the file ends exactly on a frame boundary *)
  | Torn of int
      (** byte offset of a partial final record (no valid frame after
          it) — truncated by {!recover}, reported as a warning by lint *)
  | Corrupt of int
      (** byte offset of an invalid frame with valid frames after it:
          mid-log corruption, never produced by a crash — fatal *)

type scanned = {
  records : record list;  (** the valid prefix, in log order *)
  prefix_end : int;  (** byte offset just past the last valid frame *)
  tail : tail;
}

val scan : ?file:string -> string -> scanned
(** Decode a log image. Frames after a [Corrupt] break are {e not}
    included in [records] (replaying across a gap would build the wrong
    corpus).
    @raise Error ([WAL001]) when the header is missing or wrong —
    except that a file shorter than the header with matching prefix
    (a header torn mid-write) scans as empty with a [Torn 0] tail. *)

type recovery = {
  replayed : record list;  (** committed records, in log order *)
  head : int64;  (** highest sequence number, [0L] when empty *)
  truncated : bool;  (** a torn tail was cut off *)
}

val recover : string -> recovery
(** Read, verify, and repair [path]: a torn tail is truncated in place
    (never fatal), the surviving records are returned for replay. A
    missing file is an empty log. Honors the ["wal.replay"] failpoint.
    @raise Error ([WAL001]) foreign file, ([WAL002]) mid-log corruption,
    ([WAL003]) non-monotonic sequence numbers. *)

val validate : Tsg_util.Diagnostic.collector -> string -> unit
(** The lint pass over a WAL file ([tsg-lint --wal]): [WAL001] (error)
    bad magic/version, [WAL002] mid-log corruption (error) or a torn
    tail (warning — recovery repairs it), [WAL003] (error)
    non-monotonic sequence numbers, plus [IO001] when unreadable. *)
