module Taxonomy = Tsg_taxonomy.Taxonomy
module Pattern_io = Tsg_core.Pattern_io
module Diagnostic = Tsg_util.Diagnostic
module Fault = Tsg_util.Fault
module Safe_io = Tsg_util.Safe_io
module Serve = Tsg_query.Serve
module Epoch = Tsg_query.Epoch

let render ?epoch_seq ~taxonomy ~edge_labels ~db_size patterns =
  let node_labels = Taxonomy.labels taxonomy in
  (* sort by each pattern's own one-pattern rendering: canonical node
     order and label names only, so the order (and hence the bytes) is a
     function of content, not of this process's interning history *)
  let keyed =
    List.map
      (fun p ->
        (Pattern_io.to_string ~node_labels ~edge_labels ~db_size [ p ], p))
      patterns
  in
  let sorted =
    List.map snd
      (List.sort (fun (a, _) (b, _) -> String.compare a b) keyed)
  in
  let payload = Pattern_io.to_string ~node_labels ~edge_labels ~db_size sorted in
  match epoch_seq with
  | None -> payload
  | Some seq -> Epoch.stamp ~seq payload

let write path content =
  Fault.inject "pipeline.publish";
  Safe_io.write_atomic path content

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Error (Diagnostic.make ~rule:"PIPE002" Diagnostic.Error msg))
    fmt

(* one request over a fresh connection; the server replies a single line *)
let reload_once ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (host, port)) with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Result.Error (Unix.error_message e)
  | () ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        match
          output_string oc "reload\n";
          flush oc;
          input_line ic
        with
        | exception (End_of_file | Sys_error _) ->
          Result.Error "connection closed before the reload reply"
        | line -> Result.Ok line)

(* tolerate trailing fields: the ack grew an [epoch <e>] suffix and may
   grow again — the checksum token is the contract *)
let parse_ack line =
  match String.split_on_char ' ' line with
  | "ok" :: "reload" :: "patterns" :: _ :: "checksum" :: hex :: _ ->
    Int64.of_string_opt ("0x" ^ hex)
  | _ -> None

let push ~host ~port ~artifact ~previous =
  let expected =
    try Ok (Serve.checksum_files [ artifact ])
    with Sys_error msg -> fail "cannot checksum %s: %s" artifact msg
  in
  match expected with
  | Error _ as e -> e
  | Ok expected -> (
    let rollback reason =
      (match previous with
      | Some bytes -> (
        Safe_io.write_atomic artifact bytes;
        (* best effort: the server should end up serving the restored
           artifact; a second failure leaves it on its old engine anyway
           (reload rolls back server-side on any error) *)
        match reload_once ~host ~port with _ -> ())
      | None -> ());
      fail "push of %s failed (%s); previous artifact %s" artifact reason
        (match previous with
        | Some _ -> "restored and re-pushed"
        | None -> "unavailable, server left on its old engine")
    in
    match reload_once ~host ~port with
    | Error msg -> fail "cannot reach server: %s" msg
    | Ok line -> (
      match parse_ack line with
      | None -> rollback (Printf.sprintf "server said %S" line)
      | Some acked ->
        if Int64.equal acked expected then Ok acked
        else
          rollback
            (Printf.sprintf "checksum mismatch: served %016Lx, disk %016Lx"
               acked expected)))
