(** The artifact publisher: from a pattern set to a served engine.

    Rendering is {e content-ordered}: patterns are sorted by their own
    serialized form (label names, canonical node numbering — see
    {!Tsg_core.Pattern_io}), never by interned ids. Two processes with
    different interning histories — the long-lived incremental daemon
    and a from-scratch mine of the same corpus — therefore render
    byte-identical artifacts for equal pattern sets, which is the
    property the delta-equivalence tests pin down.

    Publishing is crash-safe ({!Tsg_util.Safe_io.write_atomic}, with the
    ["pipeline.publish"] failpoint in front) and {e verified} when
    pushed: after asking a running [tsg-serve] to reload, the checksum
    it acknowledges must equal the artifact's own; on any mismatch or
    failure the previous artifact bytes are restored and re-pushed, and
    the incident surfaces as a [PIPE002] diagnostic. *)

val render :
  ?epoch_seq:int64 ->
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  edge_labels:Tsg_graph.Label.t ->
  db_size:int ->
  Tsg_core.Pattern.t list ->
  string
(** The pattern set in {!Tsg_core.Pattern_io} text form, content-sorted.
    With [epoch_seq] (the publisher's WAL watermark) the artifact is
    prefixed with a [# epoch] stamp ({!Tsg_query.Epoch.stamp}) so
    loaders can verify integrity and clusters can agree on a version;
    the payload after the stamp is identical to the unstamped
    rendering. *)

val write : string -> string -> unit
(** [write path content]: atomic artifact write behind the
    ["pipeline.publish"] failpoint. *)

val push :
  host:Unix.inet_addr ->
  port:int ->
  artifact:string ->
  previous:string option ->
  (int64, Tsg_util.Diagnostic.t) result
(** Ask the server at [host:port] to hot-reload [artifact] (the [reload]
    protocol verb) and verify the acknowledged checksum against the
    bytes on disk. [Ok checksum] on success. On mismatch or refusal,
    rolls back: restores [previous] (the prior artifact bytes) when
    given, pushes again, and returns a [PIPE002] diagnostic either
    way. Connection-level failures return [PIPE002] without touching
    the artifact. *)
