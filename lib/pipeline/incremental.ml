module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Label = Tsg_graph.Label
module Taxonomy = Tsg_taxonomy.Taxonomy
module Pattern = Tsg_core.Pattern
module Pattern_io = Tsg_core.Pattern_io
module Relabel = Tsg_core.Relabel
module Specialize = Tsg_core.Specialize
module Taxogram = Tsg_core.Taxogram
module Checksum = Tsg_util.Checksum
module Diagnostic = Tsg_util.Diagnostic
module Fault = Tsg_util.Fault
module Pool = Tsg_util.Pool
module Safe_io = Tsg_util.Safe_io
module Timer = Tsg_util.Timer

module Seed_set = Set.Make (struct
  type t = int * int * int

  let compare = Stdlib.compare
end)

type t = {
  corpus : Corpus.t;
  config : Taxogram.config;
  exec : Pool.Exec.t;
  mutable groups : ((int * int * int) * Pattern.t list) list;
      (* sorted by seed triple *)
  mutable have_cache : bool;
  mutable threshold : int;
  mutable watermark : int64;
  mutable dirty : Seed_set.t;
}

let create ~corpus ~config ~exec () =
  {
    corpus;
    config;
    exec;
    groups = [];
    have_cache = false;
    threshold = -1;
    watermark = -1L;
    dirty = Seed_set.empty;
  }

let mined_seq t = t.watermark

let dirty_count t = Seed_set.cardinal t.dirty

let mark_dirty t g =
  let mg = Relabel.graph (Corpus.taxonomy t.corpus) g in
  t.dirty <-
    Graph.fold_edges
      (fun u v l acc ->
        let la = Graph.node_label mg u and lb = Graph.node_label mg v in
        let key = if la <= lb then (la, l, lb) else (lb, l, la) in
        Seed_set.add key acc)
      mg t.dirty

type refresh_stats = {
  full : bool;
  roots_mined : int;
  roots_cached : int;
  patterns : int;
  wall_s : float;
}

let pattern_count groups =
  List.fold_left (fun n (_, ps) -> n + List.length ps) 0 groups

let by_seed (a, _) (b, _) = Stdlib.compare a b

let refresh t =
  Fault.inject "pipeline.remine";
  let timer = Timer.start () in
  let head = Corpus.seq t.corpus in
  let db = Corpus.db t.corpus in
  let threshold =
    Db.support_count_to_threshold db t.config.Taxogram.min_support
  in
  let full = (not t.have_cache) || threshold <> t.threshold in
  if (not full) && Seed_set.is_empty t.dirty then begin
    (* nothing a delta could have touched; just advance the watermark *)
    t.watermark <- head;
    {
      full = false;
      roots_mined = 0;
      roots_cached = List.length t.groups;
      patterns = pattern_count t.groups;
      wall_s = Timer.elapsed_s timer;
    }
  end
  else begin
    let root_select =
      if full then None else Some (fun seed -> Seed_set.mem seed t.dirty)
    in
    let spec =
      Taxogram.Spec.collect ~config:t.config ~exec:t.exec ?root_select ()
    in
    let result = Taxogram.run spec (Corpus.taxonomy t.corpus) db in
    let mined = result.Taxogram.root_groups in
    let groups =
      if full then mined
      else
        (* clean groups survive verbatim; dirty ones are replaced by what
           the selective run found (possibly nothing: vanished roots) *)
        let kept =
          List.filter (fun (seed, _) -> not (Seed_set.mem seed t.dirty)) t.groups
        in
        List.sort by_seed (List.rev_append kept mined)
    in
    t.groups <- groups;
    t.have_cache <- true;
    t.threshold <- threshold;
    t.dirty <- Seed_set.empty;
    t.watermark <- head;
    {
      full;
      roots_mined = List.length mined;
      roots_cached = List.length groups - List.length mined;
      patterns = pattern_count groups;
      wall_s = Timer.elapsed_s timer;
    }
  end

let patterns t = List.concat_map snd t.groups

let render t =
  (* stamped with the WAL watermark: replicas loading this artifact
     agree on an epoch whose sequence half is the log position it
     describes (-1 before any refresh renders an unstamped artifact) *)
  let epoch_seq =
    if Int64.compare t.watermark 0L >= 0 then Some t.watermark else None
  in
  Publish.render ?epoch_seq
    ~taxonomy:(Corpus.taxonomy t.corpus)
    ~edge_labels:(Corpus.edge_labels t.corpus)
    ~db_size:(Corpus.size t.corpus) (patterns t)

(* ------------------------------------------------------------------ *)
(* State snapshots *)

let magic = "tsgpipe"

let version = 1

let enh_bit b = if b then '1' else '0'

let params_string (cfg : Taxogram.config) =
  let e = cfg.enhancements in
  Printf.sprintf "theta=%h max_edges=%s enh=%c%c%c%c" cfg.min_support
    (match cfg.max_edges with None -> "-" | Some n -> string_of_int n)
    (enh_bit e.Specialize.child_pruning)
    (enh_bit e.Specialize.label_prefilter)
    (enh_bit e.Specialize.start_preprocess)
    (enh_bit e.Specialize.collapse_equal_children)

(* group-header label names share the WAL/Serial constraint of being
   space-split tokens, so escape whitespace, controls and '%' *)
let esc s =
  if String.equal s "" then "%"
  else begin
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        if c = '%' || c <= ' ' || c = '\x7f' then
          Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let unesc s =
  if String.equal s "%" then Some ""
  else begin
    let n = String.length s in
    let b = Buffer.create n in
    let rec go i =
      if i >= n then Some (Buffer.contents b)
      else if s.[i] <> '%' then begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
      else if i + 2 < n then begin
        match int_of_string_opt (Printf.sprintf "0x%c%c" s.[i + 1] s.[i + 2]) with
        | Some code when code >= 0 && code < 256 ->
          Buffer.add_char b (Char.chr code);
          go (i + 3)
        | _ -> None
      end
      else None
    in
    go 0
  end

let save_state t path =
  let tax_labels = Taxonomy.labels (Corpus.taxonomy t.corpus) in
  let edge_labels = Corpus.edge_labels t.corpus in
  let db_size = Corpus.size t.corpus in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "%s %d %Ld %d %d %d %s\n" magic version t.watermark
       t.threshold db_size (List.length t.groups) (params_string t.config));
  List.iter
    (fun ((la, le, lb), ps) ->
      let block =
        Pattern_io.to_string ~node_labels:tax_labels ~edge_labels ~db_size ps
      in
      Buffer.add_string b
        (Printf.sprintf "g %d %s %s %s\n" (String.length block)
           (esc (Label.name tax_labels la))
           (esc (Label.name edge_labels le))
           (esc (Label.name tax_labels lb)));
      Buffer.add_string b block)
    t.groups;
  let body = Buffer.contents b in
  Safe_io.write_atomic path
    (Printf.sprintf "%send %08lx\n" body (Checksum.crc32 body))

let header_fields content =
  match String.index_opt content '\n' with
  | None -> None
  | Some eol -> (
    match String.split_on_char ' ' (String.sub content 0 eol) with
    | m :: v :: seq :: threshold :: db_size :: ngroups :: params
      when String.equal m magic && String.equal v (string_of_int version) ->
      Some (seq, threshold, db_size, ngroups, String.concat " " params, eol)
    | _ -> None)

let state_watermark content =
  match header_fields content with
  | Some (seq, _, _, _, _, _) -> Int64.of_string_opt seq
  | None -> None

exception Bad of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let require_name what table escaped =
  match Option.bind (unesc escaped) (Label.find table) with
  | Some id -> id
  | None -> bad "%s label %S is not interned" what escaped

(* trailer is "end " + 8 hex digits + newline *)
let trailer_len = 13

let split_trailer content =
  let n = String.length content in
  if n < trailer_len || not (String.equal (String.sub content (n - trailer_len) 4) "end ")
  then bad "missing trailer";
  let hex = String.sub content (n - trailer_len + 4) 8 in
  let body = String.sub content 0 (n - trailer_len) in
  match Int32.of_string_opt ("0x" ^ hex) with
  | None -> bad "unreadable trailer checksum %S" hex
  | Some recorded ->
    let actual = Checksum.crc32 body in
    if not (Int32.equal recorded actual) then
      bad "checksum mismatch: recorded %08lx, computed %08lx" recorded actual;
    body

let line_at body pos =
  match String.index_from_opt body pos '\n' with
  | None -> bad "truncated group header"
  | Some eol -> (String.sub body pos (eol - pos), eol + 1)

let load_state t content =
  let tax_labels = Taxonomy.labels (Corpus.taxonomy t.corpus) in
  let edge_labels = Corpus.edge_labels t.corpus in
  try
    let body = split_trailer content in
    let seq, threshold, ngroups, body_pos =
      match header_fields body with
      | None -> bad "unrecognized header"
      | Some (seq, threshold, _db_size, ngroups, params, eol) ->
        let expect = params_string t.config in
        if not (String.equal params expect) then
          bad "configuration drift: snapshot %S, engine %S" params expect;
        let seq =
          match Int64.of_string_opt seq with
          | Some s when Int64.compare s 0L >= 0 -> s
          | _ -> bad "unreadable watermark %S" seq
        in
        if Int64.compare seq (Corpus.seq t.corpus) > 0 then
          bad "watermark %Ld is ahead of the log head %Ld" seq
            (Corpus.seq t.corpus);
        let threshold =
          match int_of_string_opt threshold with
          | Some n when n >= 1 -> n
          | _ -> bad "unreadable threshold %S" threshold
        in
        let ngroups =
          match int_of_string_opt ngroups with
          | Some n when n >= 0 -> n
          | _ -> bad "unreadable group count %S" ngroups
        in
        (seq, threshold, ngroups, eol + 1)
    in
    let pos = ref body_pos in
    let groups = ref [] in
    for _ = 1 to ngroups do
      let line, after = line_at body !pos in
      match String.split_on_char ' ' line with
      | [ "g"; len; from_l; edge_l; to_l ] ->
        let len =
          match int_of_string_opt len with
          | Some n when n >= 0 && after + n <= String.length body -> n
          | _ -> bad "unreadable group block length %S" len
        in
        let la = require_name "node" tax_labels from_l in
        let le = require_name "edge" edge_labels edge_l in
        let lb = require_name "node" tax_labels to_l in
        let seed = if la <= lb then (la, le, lb) else (lb, le, la) in
        let block = String.sub body after len in
        let ps =
          if len = 0 then []
          else
            match
              Pattern_io.parse ~node_labels:tax_labels ~edge_labels block
            with
            | exception Pattern_io.Parse_error d ->
              bad "group block: %s" d.Diagnostic.message
            | ps, _recorded_db_size -> ps
        in
        groups := (seed, ps) :: !groups;
        pos := after + len
      | _ -> bad "unrecognized group header %S" line
    done;
    if !pos <> String.length body then
      bad "%d trailing bytes after the last group" (String.length body - !pos);
    t.groups <- List.sort by_seed !groups;
    t.have_cache <- true;
    t.threshold <- threshold;
    t.watermark <- seq;
    Ok ()
  with Bad msg ->
    t.groups <- [];
    t.have_cache <- false;
    Error
      (Diagnostic.makef ~rule:"PIPE003" Diagnostic.Warning
         "state snapshot unusable (%s), re-mining from scratch" msg)
