module Checksum = Tsg_util.Checksum
module Diagnostic = Tsg_util.Diagnostic
module Fault = Tsg_util.Fault

exception Error of Diagnostic.t

let fail ?file ?line rule fmt =
  Printf.ksprintf
    (fun msg ->
      raise (Error (Diagnostic.make ?file ?line ~rule Diagnostic.Error msg)))
    fmt

type op = Add of string | Remove of int64

type record = { seq : int64; op : op }

let header = "tsgwal 1\n"

let header_len = String.length header

(* --- payload codec ----------------------------------------------------- *)

let encode_payload r =
  match r.op with
  | Add graph -> Printf.sprintf "a %Ld\n%s" r.seq graph
  | Remove target -> Printf.sprintf "d %Ld %Ld" r.seq target

let decode_payload payload =
  let seq_of s =
    match Int64.of_string_opt s with
    | Some v when Int64.compare v 0L > 0 -> Some v
    | _ -> None
  in
  if String.length payload >= 2 && payload.[0] = 'a' && payload.[1] = ' ' then
    match String.index_opt payload '\n' with
    | None -> None
    | Some nl ->
      let seq = String.sub payload 2 (nl - 2) in
      let graph =
        String.sub payload (nl + 1) (String.length payload - nl - 1)
      in
      Option.map (fun seq -> { seq; op = Add graph }) (seq_of seq)
  else
    match String.split_on_char ' ' payload with
    | [ "d"; seq; target ] -> (
      match (seq_of seq, seq_of target) with
      | Some seq, Some target -> Some { seq; op = Remove target }
      | _ -> None)
    | _ -> None

(* --- framing ----------------------------------------------------------- *)

let frame r =
  let payload = encode_payload r in
  Printf.sprintf "%08x %s %s\n"
    (String.length payload)
    (Checksum.to_hex (Checksum.crc32 payload))
    payload

(* fixed-width hex field; rejects signs, 0x, and over/under-length *)
let hex8 s pos =
  let ok = ref true in
  for i = pos to pos + 7 do
    match s.[i] with '0' .. '9' | 'a' .. 'f' -> () | _ -> ok := false
  done;
  if !ok then int_of_string_opt ("0x" ^ String.sub s pos 8) else None

(* one frame at [pos]: the decoded record and the offset just past it *)
let frame_at text pos =
  let len = String.length text in
  if len - pos < 19 then None
  else
    match (hex8 text pos, text.[pos + 8], text.[pos + 17]) with
    | Some flen, ' ', ' ' ->
      let crc = String.sub text (pos + 9) 8 in
      let data_start = pos + 18 in
      if data_start + flen + 1 > len then None
      else if text.[data_start + flen] <> '\n' then None
      else if
        not
          (String.equal crc
             (Checksum.to_hex
                (Checksum.crc32_sub text ~pos:data_start ~len:flen)))
      then None
      else
        Option.map
          (fun r -> (r, data_start + flen + 1))
          (decode_payload (String.sub text data_start flen))
    | _ -> None

type tail = Clean | Torn of int | Corrupt of int

type scanned = { records : record list; prefix_end : int; tail : tail }

(* does any valid frame start at or after [pos]? walks byte by byte: a
   mid-log classification is a cold error path, not a hot loop *)
let rec valid_frame_after text pos =
  if pos >= String.length text then false
  else
    match frame_at text pos with
    | Some _ -> true
    | None -> valid_frame_after text (pos + 1)

let scan ?file text =
  let len = String.length text in
  if len < header_len then begin
    if String.equal text (String.sub header 0 len) then
      (* a header torn mid-write: an empty log with a torn tail *)
      { records = []; prefix_end = 0; tail = Torn 0 }
    else fail ?file ~line:1 "WAL001" "not a WAL file (bad magic)"
  end
  else if not (String.equal (String.sub text 0 header_len) header) then
    fail ?file ~line:1 "WAL001" "not a WAL file (bad magic or version)"
  else begin
    let records = ref [] in
    let pos = ref header_len in
    let tail = ref Clean in
    let scanning = ref true in
    while !scanning do
      if !pos = len then scanning := false
      else
        match frame_at text !pos with
        | Some (r, next) ->
          records := r :: !records;
          pos := next
        | None ->
          (* invalid bytes from here on: a torn tail if no committed
             frame follows, mid-log corruption otherwise *)
          tail :=
            (if valid_frame_after text (!pos + 1) then Corrupt !pos
             else Torn !pos);
          scanning := false
    done;
    { records = List.rev !records; prefix_end = !pos; tail = !tail }
  end

let check_monotonic ?file records =
  ignore
    (List.fold_left
       (fun prev r ->
         if Int64.compare r.seq prev <= 0 then
           fail ?file "WAL003"
             "non-monotonic sequence numbers: record %Ld follows %Ld" r.seq
             prev;
         r.seq)
       0L records)

(* --- recovery ----------------------------------------------------------- *)

type recovery = { replayed : record list; head : int64; truncated : bool }

let truncate_to path size =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd size;
      Unix.fsync fd)

let recover path =
  Fault.inject "wal.replay";
  if not (Sys.file_exists path) then
    { replayed = []; head = 0L; truncated = false }
  else begin
    let text = Tsg_util.Safe_io.read_file path in
    if String.length text = 0 then
      { replayed = []; head = 0L; truncated = false }
    else begin
      let s = scan ~file:path text in
      (match s.tail with
      | Clean | Torn _ -> ()
      | Corrupt at ->
        fail ~file:path "WAL002"
          "corrupt frame at byte %d with committed records after it; \
           refusing to replay across the gap"
          at);
      check_monotonic ~file:path s.records;
      let truncated =
        match s.tail with
        | Torn _ ->
          truncate_to path s.prefix_end;
          true
        | Clean | Corrupt _ -> false
      in
      let head =
        List.fold_left (fun _ r -> r.seq) 0L s.records
      in
      { replayed = s.records; head; truncated }
    end
  end

(* --- appending ---------------------------------------------------------- *)

type writer = { fd : Unix.file_descr }

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let open_writer path =
  let fresh =
    (not (Sys.file_exists path)) || (Unix.stat path).Unix.st_size = 0
  in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  match
    if fresh then begin
      write_all fd header;
      Unix.fsync fd
    end
  with
  | () -> { fd }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let append w r =
  Fault.inject "wal.append";
  write_all w.fd (frame r);
  Fault.inject "wal.fsync";
  Unix.fsync w.fd

let close w = Unix.close w.fd

(* --- lint pass ---------------------------------------------------------- *)

let validate c path =
  match Tsg_util.Safe_io.read_file path with
  | exception Sys_error msg ->
    Diagnostic.emit c
      (Diagnostic.makef ~file:path ~rule:"IO001" Diagnostic.Error "%s" msg)
  | text -> (
    match scan ~file:path text with
    | exception Error d -> Diagnostic.emit c d
    | s ->
      (match s.tail with
      | Clean -> ()
      | Torn at ->
        Diagnostic.emit c
          (Diagnostic.makef ~file:path ~rule:"WAL002" Diagnostic.Warning
             "torn tail at byte %d (%d records survive); recovery will \
              truncate it"
             at (List.length s.records))
      | Corrupt at ->
        Diagnostic.emit c
          (Diagnostic.makef ~file:path ~rule:"WAL002" Diagnostic.Error
             "corrupt frame at byte %d with committed records after it — \
              this is bit rot, not a crash artifact; recovery refuses the \
              log"
             at));
      ignore
        (List.fold_left
           (fun prev (r : record) ->
             if Int64.compare r.seq prev <= 0 then
               Diagnostic.emit c
                 (Diagnostic.makef ~file:path ~rule:"WAL003" Diagnostic.Error
                    "non-monotonic sequence numbers: record %Ld follows %Ld"
                    r.seq prev);
             r.seq)
           0L s.records))
