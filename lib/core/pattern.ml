module Graph = Tsg_graph.Graph
module Label = Tsg_graph.Label
module Bitset = Tsg_util.Bitset
module Min_code = Tsg_gspan.Min_code

type t = {
  graph : Graph.t;
  support_count : int;
  support : float;
  support_set : Bitset.t;
}

let make ~db_size graph support_set =
  let support_count = Bitset.cardinal support_set in
  let support =
    if db_size = 0 then 0.0
    else float_of_int support_count /. float_of_int db_size
  in
  { graph; support_count; support; support_set }

let key t = Min_code.canonical_key t.graph

let compare a b = String.compare (key a) (key b)

let sort l = List.sort compare l

let equal_sets a b =
  let tag t = (key t, Bitset.to_list t.support_set) in
  let norm l = List.sort Stdlib.compare (List.map tag l) in
  norm a = norm b

let edge_count t = Graph.edge_count t.graph

let node_count t = Graph.node_count t.graph

let pp ~names ppf t =
  let g = t.graph in
  Format.fprintf ppf "@[<h>pattern[sup=%d (%.2f)]" t.support_count t.support;
  for v = 0 to Graph.node_count g - 1 do
    Format.fprintf ppf " %d:%s" v (Label.name names (Graph.node_label g v))
  done;
  Array.iter
    (fun (u, v, l) ->
      if l = 0 then Format.fprintf ppf " (%d-%d)" u v
      else Format.fprintf ppf " (%d-%d/%d)" u v l)
    (Graph.edges g);
  Format.fprintf ppf "@]"

let to_string ~names t = Format.asprintf "%a" (pp ~names) t
