(** Mining checkpoints: crash-safe snapshots of completed root tasks.

    {!Taxogram.run} commits work at root granularity (one gSpan seed
    subtree, or one level-wise class), and its output under any early stop
    is a prefix of the canonical root sequence. A checkpoint freezes such
    a prefix to disk: the payload of every completed root — patterns,
    coverage, statistics — plus a fingerprint binding the snapshot to the
    exact taxonomy, database, and configuration that produced it. A
    resumed run skips the stored roots, mines the rest, and merges; the
    final pattern set is byte-identical to an uninterrupted run
    (property-tested).

    The file format is versioned line-oriented text, written atomically
    ({!Tsg_util.Safe_io.write_atomic}) and closed by a CRC-32 trailer, so
    a reader can always tell a complete snapshot from a torn one.
    Corruption, truncation, and fingerprint mismatches surface as {!Error}
    carrying a [CKPT]-coded diagnostic. *)

exception Error of Tsg_util.Diagnostic.t
(** Rule codes: [CKPT001] unreadable/corrupt/truncated file, [CKPT002]
    fingerprint or shape mismatch with the present run, [CKPT003] stale
    snapshot — the corpus sequence number (the WAL position of an
    incrementally maintained database) moved since the snapshot was
    taken. *)

type entry = {
  root : int;  (** index in the canonical root sequence *)
  classes : int;
  oi_entries : int;
  oi_set_members : int;
  enum_seconds : float;
  stats : Specialize.stats;
  covered : Tsg_util.Bitset.t;  (** capacity = database size *)
  patterns : Pattern.t list;  (** canonical emission order *)
}

type t = {
  fingerprint : int64;  (** {!fingerprint} of the producing run *)
  corpus_seq : int64;
      (** corpus version the snapshot describes: the WAL sequence number
          for a pipeline-maintained database ({!Tsg_pipeline.Wal}), [0L]
          for a static corpus *)
  db_size : int;
  roots_total : int;  (** [-1] when unknown up front (level-wise mining) *)
  entries : entry list;  (** completed-root prefix, ascending by [root] *)
}

val fingerprint :
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  db:Tsg_graph.Db.t ->
  params:string ->
  int64
(** Content hash of the run's inputs: taxonomy structure (names and
    parent lists in id order), every database graph (labels and edges in
    id order), and [params], an arbitrary string encoding the mining
    configuration. Two runs with equal fingerprints intern labels in the
    same order, so checkpoint payloads can store raw label ids. *)

val save : string -> t -> unit
(** Atomic write; honors the ["safe_io.write"] failpoint. *)

val load : string -> t
(** @raise Error ([CKPT001]) on unreadable, corrupt, or torn files. *)

val check :
  fingerprint:int64 ->
  corpus_seq:int64 ->
  db_size:int ->
  roots_total:int ->
  t ->
  unit
(** Validate a loaded checkpoint against the present run. The corpus
    sequence is compared first: a snapshot taken at corpus version [N]
    and resumed at [N+k] is stale regardless of anything else.
    @raise Error ([CKPT003]) when the corpus sequence moved;
    ([CKPT002]) when the fingerprint, database size, or root count
    disagree. *)
