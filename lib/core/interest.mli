(** Taxonomy-based interestingness, after Srikant & Agrawal (VLDB'95), whose
    generalized association-rule mining the paper credits as the origin of
    taxonomy-based data mining.

    A specialized pattern is only informative when its support deviates from
    what its generalization already predicts: if label [l] accounts for a
    fraction [f(l)/f(parent l)] of its parent's occurrences, then
    specializing one node of a pattern is {e expected} to scale the
    pattern's support by that fraction. The interest ratio of a pattern is
    its actual support over the smallest such expectation across its
    single-step generalizations; a pattern is {e R-interesting} when the
    ratio is at least [R] (Srikant & Agrawal use R = 1.1). *)

type ranked = {
  pattern : Pattern.t;
  ratio : float;
      (** actual / expected support; [infinity] for patterns with no
          generalization (all labels are roots) *)
}

val label_frequencies :
  Tsg_taxonomy.Taxonomy.t -> Tsg_graph.Db.t -> int array
(** Generalized size-1 frequency per taxonomy label: the number of graphs
    containing a node whose label descends from it. *)

val ratio :
  Tsg_taxonomy.Taxonomy.t ->
  Tsg_graph.Db.t ->
  freq:int array ->
  ?support_of:(Tsg_graph.Graph.t -> int option) ->
  Pattern.t ->
  float
(** Minimum actual/expected ratio over all single-step generalizations of
    the pattern. [support_of] can serve generalization supports from an
    already-mined set (canonical-key lookup); missing ones are recomputed
    with generalized subgraph-isomorphism tests. *)

val rank :
  ?r:float ->
  Tsg_taxonomy.Taxonomy.t ->
  Tsg_graph.Db.t ->
  Pattern.t list ->
  ranked list
(** All patterns with ratio at least [r] (default 1.0), most interesting
    first. Generalization supports are looked up within the given list
    before falling back to recomputation. *)
