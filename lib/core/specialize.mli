(** Step 3 of Taxogram: enumerating specialized patterns from a pattern
    class via its occurrence index, while eliminating over-generalized
    patterns (paper Section 3, Step 3).

    Starting from the most general member of the class, node positions are
    specialized left-to-right (the processed-node-set discipline: once a
    later position has been touched, earlier positions are frozen — this is
    the paper's PNS), each step replacing a position's label by one of its
    children in the occurrence index entry and intersecting occurrence sets
    (Lemma 7). A pattern is over-generalized iff some single child
    replacement at {e any} position — frozen ones included, which is the
    paper's PNS follow-up check — preserves its support. Labels reachable
    through several DAG paths are deduplicated with a visited set (the
    paper's "visited vertex labels ... are marked"). *)

type enhancements = {
  child_pruning : bool;
      (** (a): stop descending below a child whose pattern is infrequent *)
  label_prefilter : bool;
      (** (b): drop globally-infrequent taxonomy labels from occurrence
          indices (consumed by {!Taxogram} when building indices) *)
  start_preprocess : bool;
      (** (c): advance a position's start label to a descendant with an
          identical occurrence set before enumerating (only when that
          descendant dominates every covered label of the position, which
          keeps the step complete on DAG taxonomies) *)
  collapse_equal_children : bool;
      (** (d): skip a label whose occurrence set equals one of its
          children's, exposing its children directly *)
}

val all_on : enhancements

val all_off : enhancements
(** The paper's baseline: Taxogram without the efficiency enhancements. *)

type stats = {
  mutable intersections : int;  (** occurrence-set intersections performed *)
  mutable visited : int;  (** patterns whose support was computed *)
  mutable emitted : int;
  mutable over_generalized : int;  (** visited patterns found over-general *)
}

val fresh_stats : unit -> stats

exception Out_of_time
(** Raised by {!enumerate} when the time budget runs out mid-class. *)

val enumerate :
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  min_support:int ->
  enhancements:enhancements ->
  ?stats:stats ->
  ?budget:Tsg_util.Timer.Budget.budget ->
  Occ_index.t ->
  (Pattern.t -> unit) ->
  unit
(** Emit every non-over-generalized pattern of the class with support at
    least [min_support] (an absolute graph count) — the class's most general
    member included when it qualifies.
    @raise Out_of_time when [budget] (default unlimited) expires; patterns
    already emitted stand. *)
