module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Checksum = Tsg_util.Checksum
module Diagnostic = Tsg_util.Diagnostic

exception Error of Diagnostic.t

type entry = {
  root : int;
  classes : int;
  oi_entries : int;
  oi_set_members : int;
  enum_seconds : float;
  stats : Specialize.stats;
  covered : Bitset.t;
  patterns : Pattern.t list;
}

type t = {
  fingerprint : int64;
  corpus_seq : int64;
  db_size : int;
  roots_total : int;
  entries : entry list;
}

(* --- fingerprint ------------------------------------------------------- *)

let fingerprint ~taxonomy ~db ~params =
  let h = ref (Checksum.fnv1a64 params) in
  let mix s = h := Checksum.mix64 !h (Checksum.fnv1a64 s) in
  let buf = Buffer.create 256 in
  for l = 0 to Taxonomy.label_count taxonomy - 1 do
    Buffer.clear buf;
    Buffer.add_string buf (Taxonomy.name taxonomy l);
    List.iter
      (fun p -> Buffer.add_string buf (Printf.sprintf "|%d" p))
      (Taxonomy.parents taxonomy l);
    mix (Buffer.contents buf)
  done;
  Db.iteri
    (fun gid g ->
      Buffer.clear buf;
      Buffer.add_string buf (string_of_int gid);
      for v = 0 to Graph.node_count g - 1 do
        Buffer.add_string buf (Printf.sprintf " v%d" (Graph.node_label g v))
      done;
      Array.iter
        (fun (u, v, l) ->
          Buffer.add_string buf (Printf.sprintf " e%d,%d,%d" u v l))
        (Graph.edges g);
      mix (Buffer.contents buf))
    db;
  !h

(* --- serialization ----------------------------------------------------- *)

let magic = "tsgckpt"

let version = 2

let add_bitset buf set =
  let bytes = (Bitset.capacity set + 7) / 8 in
  if bytes = 0 then Buffer.add_char buf '-'
  else begin
    let packed = Bytes.make bytes '\000' in
    Bitset.iter
      (fun i ->
        let b = i lsr 3 in
        Bytes.unsafe_set packed b
          (Char.unsafe_chr
             (Char.code (Bytes.unsafe_get packed b) lor (1 lsl (i land 7)))))
      set;
    Bytes.iter
      (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
      packed
  end

let add_pattern buf (p : Pattern.t) =
  let g = p.Pattern.graph in
  let n = Graph.node_count g in
  Buffer.add_string buf (Printf.sprintf "p %d" n);
  for v = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf " %d" (Graph.node_label g v))
  done;
  let edges = Graph.edges g in
  Buffer.add_string buf (Printf.sprintf " %d" (Array.length edges));
  Array.iter
    (fun (u, v, l) -> Buffer.add_string buf (Printf.sprintf " %d %d %d" u v l))
    edges;
  Buffer.add_char buf ' ';
  add_bitset buf p.Pattern.support_set;
  Buffer.add_char buf '\n'

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %016Lx %Ld %d %d\n" magic version t.fingerprint
       t.corpus_seq t.db_size t.roots_total);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "root %d %d %d %d %h %d %d %d %d\n" e.root e.classes
           e.oi_entries e.oi_set_members e.enum_seconds
           e.stats.Specialize.intersections e.stats.Specialize.visited
           e.stats.Specialize.emitted e.stats.Specialize.over_generalized);
      Buffer.add_string buf "c ";
      add_bitset buf e.covered;
      Buffer.add_char buf '\n';
      List.iter (add_pattern buf) e.patterns)
    t.entries;
  let body = Buffer.contents buf in
  body ^ Printf.sprintf "end %s\n" (Checksum.to_hex (Checksum.crc32 body))

let save path t =
  Tsg_util.Fault.inject "checkpoint.save";
  Tsg_util.Safe_io.write_atomic path (to_string t)

(* --- parsing ----------------------------------------------------------- *)

let fail ~file ?line fmt =
  Printf.ksprintf
    (fun msg ->
      raise
        (Error (Diagnostic.make ~file ?line ~rule:"CKPT001" Diagnostic.Error msg)))
    fmt

let parse_bitset ~file ~line cap token =
  let set = Bitset.create cap in
  let bytes = (cap + 7) / 8 in
  if token = "-" then begin
    if bytes <> 0 then fail ~file ~line "empty bitset for capacity %d" cap;
    set
  end
  else begin
    if String.length token <> 2 * bytes then
      fail ~file ~line "bitset holds %d hex digits, expected %d"
        (String.length token) (2 * bytes);
    for b = 0 to bytes - 1 do
      match int_of_string_opt ("0x" ^ String.sub token (2 * b) 2) with
      | None -> fail ~file ~line "bad bitset byte %s" (String.sub token (2 * b) 2)
      | Some byte ->
        for bit = 0 to 7 do
          if byte land (1 lsl bit) <> 0 then begin
            let i = (b lsl 3) + bit in
            if i >= cap then fail ~file ~line "bitset member %d out of range" i;
            Bitset.set set i
          end
        done
    done;
    set
  end

let parse_int ~file ~line what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail ~file ~line "bad %s %S" what s

let parse_float ~file ~line what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail ~file ~line "bad %s %S" what s

let parse_pattern ~file ~line ~db_size tokens =
  let int = parse_int ~file ~line in
  match tokens with
  | nnodes :: rest ->
    let nnodes = int "node count" nnodes in
    if nnodes <= 0 then fail ~file ~line "bad node count %d" nnodes;
    let rec take n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | x :: rest -> take (n - 1) (x :: acc) rest
      | [] -> fail ~file ~line "truncated pattern line"
    in
    let labels, rest = take nnodes [] rest in
    let labels = Array.of_list (List.map (int "node label") labels) in
    (match rest with
    | nedges :: rest ->
      let nedges = int "edge count" nedges in
      let flat, rest = take (3 * nedges) [] rest in
      let rec triples = function
        | u :: v :: l :: more ->
          (int "edge endpoint" u, int "edge endpoint" v, int "edge label" l)
          :: triples more
        | [] -> []
        | _ -> fail ~file ~line "truncated edge list"
      in
      let edges = triples flat in
      (match rest with
      | [ sup ] ->
        let support = parse_bitset ~file ~line db_size sup in
        let graph =
          try Graph.build ~labels ~edges
          with Invalid_argument msg -> fail ~file ~line "bad pattern: %s" msg
        in
        Pattern.make ~db_size graph support
      | _ -> fail ~file ~line "malformed pattern line")
    | [] -> fail ~file ~line "truncated pattern line")
  | [] -> fail ~file ~line "empty pattern line"

let parse ~file text =
  (* split off and verify the crc trailer before trusting anything else *)
  let len = String.length text in
  if len = 0 || text.[len - 1] <> '\n' then
    fail ~file "truncated checkpoint (no trailing newline)";
  let trailer_start =
    match String.rindex_from_opt text (len - 2) '\n' with
    | Some i -> i + 1
    | None -> fail ~file "missing checkpoint trailer"
  in
  let body = String.sub text 0 trailer_start in
  (match
     String.split_on_char ' '
       (String.trim (String.sub text trailer_start (len - trailer_start)))
   with
  | [ "end"; crc ] ->
    let actual = Checksum.to_hex (Checksum.crc32 body) in
    if not (String.equal crc actual) then
      fail ~file "checksum mismatch: trailer %s, content %s" crc actual
  | _ -> fail ~file "missing checkpoint trailer");
  let lines = String.split_on_char '\n' body in
  let header, rest =
    match lines with
    | h :: rest -> (h, rest)
    | [] -> fail ~file "empty checkpoint"
  in
  let fingerprint, corpus_seq, db_size, roots_total =
    match String.split_on_char ' ' header with
    | [ m; v; fp; seq; db; roots ] when m = magic ->
      let line = 1 in
      if parse_int ~file ~line "version" v <> version then
        fail ~file ~line "unsupported checkpoint version %s" v;
      (match Int64.of_string_opt ("0x" ^ fp) with
      | None -> fail ~file ~line "bad fingerprint %S" fp
      | Some fp ->
        let seq =
          match Int64.of_string_opt seq with
          | Some s when Int64.compare s 0L >= 0 -> s
          | _ -> fail ~file ~line "bad corpus sequence %S" seq
        in
        ( fp,
          seq,
          parse_int ~file ~line "database size" db,
          parse_int ~file ~line "root count" roots ))
    | _ -> fail ~file ~line:1 "not a checkpoint file"
  in
  if db_size < 0 then fail ~file ~line:1 "negative database size";
  let entries = ref [] in
  let current = ref None in
  let lineno = ref 1 in
  let close_current () =
    match !current with
    | None -> ()
    | Some (e, pats) ->
      entries := { e with patterns = List.rev pats } :: !entries;
      current := None
  in
  List.iter
    (fun line_text ->
      incr lineno;
      let line = !lineno in
      if line_text = "" then ()
      else
        match String.split_on_char ' ' line_text with
        | [ "root"; idx; classes; oie; oim; enum; i; v; e; o ] ->
          close_current ();
          let int = parse_int ~file ~line in
          let entry =
            {
              root = int "root index" idx;
              classes = int "class count" classes;
              oi_entries = int "entry count" oie;
              oi_set_members = int "member count" oim;
              enum_seconds = parse_float ~file ~line "enumerate seconds" enum;
              stats =
                {
                  Specialize.intersections = int "intersections" i;
                  visited = int "visited" v;
                  emitted = int "emitted" e;
                  over_generalized = int "over-generalized" o;
                };
              covered = Bitset.create db_size;
              patterns = [];
            }
          in
          current := Some (entry, [])
        | [ "c"; hex ] -> (
          match !current with
          | None -> fail ~file ~line "'c' before any 'root' header"
          | Some (e, pats) ->
            current :=
              Some ({ e with covered = parse_bitset ~file ~line db_size hex }, pats))
        | "p" :: tokens -> (
          match !current with
          | None -> fail ~file ~line "'p' before any 'root' header"
          | Some (e, pats) ->
            current :=
              Some (e, parse_pattern ~file ~line ~db_size tokens :: pats))
        | _ -> fail ~file ~line "unrecognized line: %s" line_text)
    rest;
  close_current ();
  let entries = List.rev !entries in
  List.iteri
    (fun i e ->
      if e.root <> i then
        fail ~file "entries are not a root prefix (position %d holds root %d)"
          i e.root)
    entries;
  if roots_total >= 0 && List.length entries > roots_total then
    fail ~file "%d entries for %d roots" (List.length entries) roots_total;
  { fingerprint; corpus_seq; db_size; roots_total; entries }

let load path =
  Tsg_util.Fault.inject "checkpoint.load";
  let text =
    try Tsg_util.Safe_io.read_file path
    with Sys_error msg -> fail ~file:path "cannot read checkpoint: %s" msg
  in
  parse ~file:path text

let check ~fingerprint ~corpus_seq ~db_size ~roots_total t =
  let mismatch fmt =
    Printf.ksprintf
      (fun msg ->
        raise
          (Error
             (Diagnostic.make ~rule:"CKPT002" Diagnostic.Error
                ("checkpoint does not match this run: " ^ msg))))
      fmt
  in
  (* checked before the fingerprint: a corpus that moved on produces a
     different fingerprint too, and the stale-corpus diagnostic is the
     actionable one (re-mine from scratch, don't hunt for config drift) *)
  if not (Int64.equal t.corpus_seq corpus_seq) then
    raise
      (Error
         (Diagnostic.makef ~rule:"CKPT003" Diagnostic.Error
            "checkpoint is stale: taken against corpus sequence %Ld, the \
             corpus is now at %Ld — the incremental pipeline has applied \
             deltas since this snapshot, so its completed-root prefix no \
             longer describes the present database; delete the checkpoint \
             and re-mine"
            t.corpus_seq corpus_seq));
  if not (Int64.equal t.fingerprint fingerprint) then
    mismatch "fingerprint %016Lx, expected %016Lx" t.fingerprint fingerprint;
  if t.db_size <> db_size then
    mismatch "database size %d, expected %d" t.db_size db_size;
  if t.roots_total <> roots_total then
    mismatch "root count %d, expected %d" t.roots_total roots_total
