module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Gen_iso = Tsg_iso.Gen_iso
module Min_code = Tsg_gspan.Min_code

type ranked = { pattern : Pattern.t; ratio : float }

let label_frequencies taxonomy db =
  let n = Taxonomy.label_count taxonomy in
  let counts = Array.make n 0 in
  let stamp = Array.make n (-1) in
  Db.iteri
    (fun gid g ->
      List.iter
        (fun l ->
          Bitset.iter
            (fun anc ->
              if stamp.(anc) <> gid then begin
                stamp.(anc) <- gid;
                counts.(anc) <- counts.(anc) + 1
              end)
            (Taxonomy.ancestor_set taxonomy l))
        (Graph.distinct_node_labels g))
    db;
  counts

let ratio taxonomy db ~freq ?(support_of = fun _ -> None) (p : Pattern.t) =
  let g = p.Pattern.graph in
  let actual = float_of_int p.Pattern.support_count in
  let best = ref infinity in
  for pos = 0 to Graph.node_count g - 1 do
    let l = Graph.node_label g pos in
    List.iter
      (fun parent ->
        let general = Graph.relabel g (fun v -> if v = pos then parent else Graph.node_label g v) in
        let general_support =
          match support_of general with
          | Some s -> s
          | None -> Gen_iso.support_count taxonomy ~pattern:general db
        in
        let share =
          if freq.(parent) = 0 then 0.0
          else float_of_int freq.(l) /. float_of_int freq.(parent)
        in
        let expected = float_of_int general_support *. share in
        let r = if expected > 0.0 then actual /. expected else infinity in
        if r < !best then best := r)
      (Taxonomy.parents taxonomy l)
  done;
  !best

let rank ?(r = 1.0) taxonomy db patterns =
  let freq = label_frequencies taxonomy db in
  let by_key = Hashtbl.create (List.length patterns) in
  List.iter
    (fun (p : Pattern.t) ->
      Hashtbl.replace by_key (Pattern.key p) p.Pattern.support_count)
    patterns;
  let support_of g = Hashtbl.find_opt by_key (Min_code.canonical_key g) in
  patterns
  |> List.map (fun p -> { pattern = p; ratio = ratio taxonomy db ~freq ~support_of p })
  |> List.filter (fun x -> x.ratio >= r)
  |> List.sort (fun a b -> compare b.ratio a.ratio)
