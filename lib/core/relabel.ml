module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy

let graph taxonomy g =
  Graph.relabel g (fun v -> Taxonomy.most_general taxonomy (Graph.node_label g v))

let db taxonomy d = Db.map (graph taxonomy) d
