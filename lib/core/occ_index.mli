(** Taxonomy-projected occurrence indices (paper Section 3, Step 2).

    For a pattern class (a frequent pattern of the relabeled database), the
    occurrence index assigns to each pattern node position an {e occurrence
    index entry}: a projection of the taxonomy onto the labels covered by the
    class at that position, where every label carries the bitset of
    occurrence ids whose original label at that position descends from it.

    A single generalized-isomorphism test result (one gSpan embedding) is
    thereby shared by every member of the pattern class: the occurrence set
    of any specialized pattern is an intersection of per-position label sets
    (Lemma 7), with no further isomorphism tests or database scans. *)

type t = {
  class_graph : Tsg_graph.Graph.t;
      (** most general member of the class; node ids are positions *)
  class_support_set : Tsg_util.Bitset.t;  (** over database graph ids *)
  occ_count : int;
  occ_gid : int array;  (** occurrence id -> database graph id *)
  entries : (Tsg_graph.Label.id, Tsg_util.Bitset.t) Hashtbl.t array;
      (** per position: covered label -> occurrence set (the OIE) *)
  all_occs : Tsg_util.Bitset.t;  (** the full occurrence set of the class *)
  db_size : int;
  mutable stamp : int;  (** internal, for {!distinct_graph_count} *)
  seen : int array;  (** internal scratch, stamped per graph id *)
}

val build :
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  original:Tsg_graph.Db.t ->
  ?keep_label:(Tsg_graph.Label.id -> bool) ->
  Tsg_gspan.Gspan.pattern ->
  t
(** Build the index from a pattern of the relabeled database and the
    {e original} database (for original labels). [keep_label] implements
    enhancement (b): ancestor labels failing it are left out of the entries
    (default: keep everything). The position's own class label is always
    kept. *)

val occurrence_set : t -> position:int -> Tsg_graph.Label.id -> Tsg_util.Bitset.t option
(** [OcS] of a label within a position's entry. *)

val covered_labels : t -> position:int -> Tsg_graph.Label.id list
(** Labels present in the position's entry, sorted. *)

val distinct_graph_count : t -> Tsg_util.Bitset.t -> int
(** Number of distinct database graphs among an occurrence set — the support
    numerator. Uses a generation-stamped scratch array; not thread-safe. *)

val graph_set : t -> Tsg_util.Bitset.t -> Tsg_util.Bitset.t
(** Distinct database graph ids of an occurrence set, as a bitset over the
    database. *)

val self_check :
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  original:Tsg_graph.Db.t ->
  ?keep_label:(Tsg_graph.Label.id -> bool) ->
  t ->
  string list
(** Cross-validate the index against brute-force {!Tsg_iso.Gen_iso}
    embedding enumeration over the original database: total and per-graph
    occurrence counts, the class support set, every occurrence-index-entry
    bitset cardinality per position and covered label, and the
    subset relation between a descendant label's set and its ancestors'.
    Returns discrepancy descriptions ([[]] when the index is sound).
    [keep_label] must be the filter the index was built with. Exponential
    in pattern size — debug/test use only.

    When the [TSG_DEBUG_CHECKS] environment variable is set
    ({!Tsg_util.Debug.checks_enabled}) and the instance is small, {!build}
    runs this automatically and raises [Failure] on any discrepancy. *)

(** Size accounting — the quantities the paper's Lemmas 4 and 5 bound. *)
type size = {
  positions : int;
  entries : int;  (** OIE labels across all positions *)
  set_members : int;  (** total occurrence-set members (set bits) *)
}

val size : t -> size
