(** Step 1 of Taxogram: relabeling the input database.

    Every vertex label is replaced by the most general ancestor of its label
    in the taxonomy, collapsing each pattern class onto its most general
    member. The original database is kept alongside so later stages can
    recover original labels per occurrence. *)

val graph : Tsg_taxonomy.Taxonomy.t -> Tsg_graph.Graph.t -> Tsg_graph.Graph.t

val db : Tsg_taxonomy.Taxonomy.t -> Tsg_graph.Db.t -> Tsg_graph.Db.t
(** Most-generalized copy [D_mg] of the database. Time and space O(|D| *
    |G_max|) as in the paper's Step 1 analysis. *)
