module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset

type env = {
  taxonomy : Taxonomy.t;
  node_to_combined : int array;
  edge_to_combined : int array;
  combined_to_node : int array; (* -1 when not a node concept *)
  combined_to_edge : int array;
}

let original_concepts t =
  List.filter
    (fun l -> not (Taxonomy.is_artificial t l))
    (List.init (Taxonomy.label_count t) (fun i -> i))

let edges_of t concepts =
  List.concat_map
    (fun l ->
      List.filter_map
        (fun p ->
          if Taxonomy.is_artificial t p then None
          else Some (Taxonomy.name t l, Taxonomy.name t p))
        (Taxonomy.parents t l))
    concepts

let prepare ~node_taxonomy ~edge_taxonomy =
  let node_concepts = original_concepts node_taxonomy in
  let edge_concepts = original_concepts edge_taxonomy in
  let node_names = List.map (Taxonomy.name node_taxonomy) node_concepts in
  let edge_names = List.map (Taxonomy.name edge_taxonomy) edge_concepts in
  List.iter
    (fun n ->
      if List.mem n node_names then
        invalid_arg
          ("Edge_labeled.prepare: name used by both taxonomies: " ^ n))
    edge_names;
  let combined =
    Taxonomy.build
      ~names:(node_names @ edge_names)
      ~is_a:
        (edges_of node_taxonomy node_concepts
        @ edges_of edge_taxonomy edge_concepts)
  in
  let to_combined t concepts =
    let arr = Array.make (Taxonomy.label_count t) (-1) in
    List.iter
      (fun l ->
        arr.(l) <- Taxonomy.id_of_name combined (Taxonomy.name t l))
      concepts;
    arr
  in
  let node_to_combined = to_combined node_taxonomy node_concepts in
  let edge_to_combined = to_combined edge_taxonomy edge_concepts in
  let n = Taxonomy.label_count combined in
  let combined_to_node = Array.make n (-1) in
  let combined_to_edge = Array.make n (-1) in
  Array.iteri
    (fun l c -> if c >= 0 then combined_to_node.(c) <- l)
    node_to_combined;
  Array.iteri
    (fun l c -> if c >= 0 then combined_to_edge.(c) <- l)
    edge_to_combined;
  {
    taxonomy = combined;
    node_to_combined;
    edge_to_combined;
    combined_to_node;
    combined_to_edge;
  }

let taxonomy env = env.taxonomy

let lookup arr what l =
  if l < 0 || l >= Array.length arr || arr.(l) < 0 then
    invalid_arg (Printf.sprintf "Edge_labeled: not a %s label: %d" what l)
  else arr.(l)

let node_concept env l = lookup env.node_to_combined "node-taxonomy" l

let edge_concept env l = lookup env.edge_to_combined "edge-taxonomy" l

let back arr l =
  if l < 0 || l >= Array.length arr || arr.(l) < 0 then None else Some arr.(l)

let node_concept_back env l = back env.combined_to_node l

let edge_concept_back env l = back env.combined_to_edge l

let encode env g =
  let n = Graph.node_count g in
  let edges = Graph.edges g in
  let labels =
    Array.init
      (n + Array.length edges)
      (fun i ->
        if i < n then node_concept env (Graph.node_label g i)
        else
          let _, _, e = edges.(i - n) in
          edge_concept env e)
  in
  let sub_edges =
    Array.to_list
      (Array.mapi (fun k (u, v, _) -> [ (u, n + k, 0); (n + k, v, 0) ]) edges)
    |> List.concat
  in
  Graph.build ~labels ~edges:sub_edges

let decode env g =
  let n = Graph.node_count g in
  let kind v = back env.combined_to_edge (Graph.node_label g v) in
  let real = ref [] in
  for v = n - 1 downto 0 do
    if kind v = None then real := v :: !real
  done;
  let remap = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.add remap v i) !real;
  let labels =
    Array.of_list
      (List.map
         (fun v ->
           match back env.combined_to_node (Graph.node_label g v) with
           | Some l -> l
           | None -> -1)
         !real)
  in
  if Array.exists (fun l -> l < 0) labels then None
  else begin
    let ok = ref true in
    let out_edges = ref [] in
    for v = 0 to n - 1 do
      match kind v with
      | Some edge_label -> (
        match Graph.neighbors g v with
        | [| (x, 0); (y, 0) |] ->
          if kind x <> None || kind y <> None then ok := false
          else
            out_edges :=
              (Hashtbl.find remap x, Hashtbl.find remap y, edge_label)
              :: !out_edges
        | _ -> ok := false)
      | None ->
        if Array.exists (fun (w, _) -> kind w = None) (Graph.neighbors g v)
        then ok := false
    done;
    if (not !ok) || !out_edges = [] then None
    else
      match Graph.build ~labels ~edges:!out_edges with
      | decoded -> Some decoded
      | exception Invalid_argument _ -> None
  end

type pattern = {
  graph : Graph.t;
  support_count : int;
  support : float;
  support_set : Bitset.t;
}

let mine ?(min_support = 0.2) ?max_edges ?(enhancements = Specialize.all_on)
    env graphs =
  let db = Db.of_list (List.map (encode env) graphs) in
  let config =
    {
      Taxogram.min_support;
      max_edges = Option.map (fun e -> 2 * e) max_edges;
      enhancements;
    }
  in
  let out = ref [] in
  let spec =
    Taxogram.Spec.stream ~config ~domains:1 (fun (p : Pattern.t) ->
        match decode env p.Pattern.graph with
        | Some g ->
          out :=
            {
              graph = g;
              support_count = p.Pattern.support_count;
              support = p.Pattern.support;
              support_set = p.Pattern.support_set;
            }
            :: !out
        | None -> ())
  in
  let _ = Taxogram.run spec env.taxonomy db in
  List.rev !out
