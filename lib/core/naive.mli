(** Executable specification of taxonomy-superimposed graph mining.

    Straight from the Section 2 definitions, with no cleverness: enumerate
    every connected subgraph of every database graph (up to a size bound),
    close the candidate set under label generalization, compute every
    support with generalized subgraph-isomorphism tests, keep the frequent
    candidates, and drop the over-generalized ones by pairwise comparison
    within structural classes.

    Exponential in everything — usable only on small inputs — but it is the
    ground truth the efficient miners are property-tested against. *)

val mine :
  max_edges:int ->
  min_support:float ->
  Tsg_taxonomy.Taxonomy.t ->
  Tsg_graph.Db.t ->
  Pattern.t list
(** Minimal and complete pattern set with supports, sorted canonically. *)

val connected_subgraphs :
  max_edges:int -> Tsg_graph.Graph.t -> Tsg_graph.Graph.t list
(** All connected subgraphs with 1..[max_edges] edges (node sets induced by
    the chosen edge sets), each listed once per distinct edge set. Exposed
    for tests. *)

val generalizations :
  Tsg_taxonomy.Taxonomy.t -> Tsg_graph.Graph.t -> Tsg_graph.Graph.t list
(** Every relabeling of the graph where each node label is replaced by one
    of its ancestors (the graph itself included). Exposed for tests. *)
