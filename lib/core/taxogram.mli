(** The Taxogram algorithm (paper Section 3): taxonomy-superimposed graph
    mining in three steps.

    + {b Relabel} every vertex with the most general ancestor of its label,
      producing the most-generalized database [D_mg] (originals kept).
    + {b Mine pattern classes}: run gSpan over [D_mg]; every frequent
      pattern of [D_mg] is the most general member of a pattern class, and
      its embeddings are turned into a taxonomy-projected occurrence index.
    + {b Enumerate specialized patterns} per class from the occurrence index
      alone — bitset intersections instead of isomorphism tests — while
      eliminating over-generalized patterns.

    The result is minimal (no over-generalized patterns, Lemma 8) and
    complete (all non-over-generalized patterns with sufficient support,
    Lemma 9).

    Beyond the paper (whose implementation was single-threaded Java), Steps
    2 and 3 run end-to-end on a work-stealing pool of OCaml domains
    ({!Tsg_util.Pool}): each frequent 1-edge DFS-code root of the gSpan
    search is a task whose rightmost-path extension subtree is explored
    independently, occurrence indices are built on the mining domains, and
    each finished class streams straight into a specialization task on the
    same pool. All of it sits behind the single entry point {!run}. *)

type config = {
  min_support : float;  (** the paper's theta, in [0, 1] *)
  max_edges : int option;  (** optional cap on pattern size *)
  enhancements : Specialize.enhancements;
}

val default_config : config
(** theta = 0.2 (the paper's usual setting), no size cap, all enhancements
    on. *)

val baseline_config : config
(** The paper's "baseline" comparator: identical pipeline, all Section 3
    efficiency enhancements off. *)

type result = {
  patterns : Pattern.t list;
      (** canonically sorted; empty under a [`Stream] sink *)
  class_count : int;  (** frequent pattern classes found in step 2 *)
  pattern_count : int;
  completed : bool;
      (** [false] when a time budget — or, under [supervised], a failing
          root — cut mining short *)
  diagnostics : Tsg_util.Diagnostic.t list;
      (** supervised-run quarantine records ([POOL001], [POOL002],
          [FLT001]); always empty without [~supervised:true] *)
  relabel_seconds : float;
  mining_seconds : float;
      (** step 2: gSpan + occurrence-index building. With several domains
          this is the wall-clock from the start of mining until the last
          mining task finished (specialization may still be running — the
          phases overlap by design). *)
  enumerate_seconds : float;
      (** step 3. With several domains this is CPU time summed across
          specialization tasks, not wall-clock. *)
  total_seconds : float;
  spec_stats : Specialize.stats;
  oi_entries : int;
      (** occurrence-index labels built across all classes (Lemma 4's
          space driver) *)
  oi_set_members : int;  (** total occurrence-set members across all OIs *)
  covered_graph_count : int;
      (** database graphs supporting at least one frequent class — the
          union of class support sets, merged per-domain at the join *)
}

type sink = [ `Collect | `Stream of (Pattern.t -> unit) ]
(** Where mined patterns go.

    [`Collect] gathers them into [result.patterns], canonically sorted
    ({!Pattern.sort}), so the output is byte-identical whatever the domain
    count or schedule. Under a budget that expires mid-run, the reported
    set is a prefix of the canonical root-task sequence (a root — one gSpan
    seed subtree, or one level-wise class — is reported atomically or not
    at all); how long that prefix is depends on timing, but its content for
    a given length never does, and an already-expired budget deterministically
    reports nothing.

    [`Stream f] delivers each pattern to [f] as its class completes and
    leaves [result.patterns] empty; memory stays proportional to the work
    in flight rather than the output. With one domain, patterns arrive in
    the canonical sequential order; with several, arrival order is
    unspecified ([f] is never called concurrently — calls are serialized)
    and a budgeted run streams whatever completed before the cut. *)

type checkpoint_spec = {
  path : string;  (** checkpoint file, created/refreshed atomically *)
  every_s : float;
      (** minimum seconds between snapshots; [0.0] snapshots after every
          completed root *)
}
(** Periodic crash-safe snapshots of completed roots (see {!Checkpoint}).
    Only meaningful under the [`Collect] sink ([`Stream] raises
    [Invalid_argument]). When [path] already holds a snapshot of the same
    taxonomy, database, and configuration (fingerprint-checked), the run
    {e resumes}: stored roots are skipped and merged, and the final
    pattern set is byte-identical to an uninterrupted run. A mismatched
    or corrupt snapshot raises {!Checkpoint.Error}. The file is deleted
    when the run completes. *)

type class_miner = [ `Gspan | `Level_wise ]
(** Which general-purpose miner powers Step 2: gSpan (depth-first, the
    paper's choice) or the FSG-style level-wise miner — the paper notes any
    of them can be extended with occurrence indices, and the outputs are
    identical (property-tested). gSpan decomposes into per-seed subtree
    tasks and mines in parallel; the level-wise miner is inherently
    breadth-first, so it mines sequentially while indexing and
    specialization still fan out across the pool. *)

val run :
  ?config:config ->
  ?budget:Tsg_util.Timer.Budget.budget ->
  ?class_miner:class_miner ->
  ?domains:int ->
  ?checkpoint:checkpoint_spec ->
  ?supervised:bool ->
  sink:sink ->
  Tsg_taxonomy.Taxonomy.t ->
  Tsg_graph.Db.t ->
  result
(** Mine the database against the taxonomy. Every node label of every graph
    must be a label of the taxonomy.

    [domains] (default {!Tsg_util.Pool.default_domains}, which honors the
    [TSG_DOMAINS] environment variable) sizes the work-stealing pool Steps
    2 and 3 share. [domains = 1] runs the classic sequential pipeline —
    one class alive at a time, the paper's Step 2 memory profile. The
    pattern set and supports are identical across domain counts
    (property-tested).

    When [budget] (default unlimited) expires the run stops early with
    [completed = false]; see {!sink} for exactly what an early stop
    reports.

    [checkpoint] (default none) snapshots completed roots to disk and
    resumes a previous snapshot found at the same path; see
    {!checkpoint_spec}.

    [supervised] (default [false]) turns task failures — injected faults
    ({!Tsg_util.Fault}), per-task deadline overruns, stray exceptions —
    into {!result.diagnostics} instead of letting them escape: pool tasks
    are retried and quarantined per {!Tsg_util.Pool.run_supervised}, and
    the reported set is still a prefix of the canonical root sequence,
    cut before the first failing root. Unsupervised, such an exception
    propagates to the caller (after snapshotting progress when
    checkpointing is on). *)

val run_streaming :
  ?config:config ->
  ?budget:Tsg_util.Timer.Budget.budget ->
  ?class_miner:class_miner ->
  Tsg_taxonomy.Taxonomy.t ->
  Tsg_graph.Db.t ->
  (Pattern.t -> unit) ->
  result
[@@alert deprecated
    "Use Taxogram.run ~domains:1 ~sink:(`Stream f) instead; this wrapper \
     will be removed."]
(** @deprecated Thin wrapper over {!run} with [~domains:1]
    [~sink:(`Stream f)]. *)

val run_parallel :
  ?config:config ->
  ?domains:int ->
  Tsg_taxonomy.Taxonomy.t ->
  Tsg_graph.Db.t ->
  result
[@@alert deprecated
    "Use Taxogram.run ?domains ~sink:`Collect instead; this wrapper will \
     be removed."]
(** @deprecated Thin wrapper over {!run} with [~sink:`Collect]. Unlike the
    historical version, Step 2 now also runs on the pool. *)

val frequent_label_filter :
  Tsg_taxonomy.Taxonomy.t -> Tsg_graph.Db.t -> min_support:int ->
  (Tsg_graph.Label.id -> bool)
(** Enhancement (b)'s predicate: keep a taxonomy label iff nodes labeled
    with it {e or any descendant} occur in at least [min_support] distinct
    graphs (its generalized size-1 support). Upward-closed, so pruned
    occurrence indices stay connected. *)
