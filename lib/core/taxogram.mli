(** The Taxogram algorithm (paper Section 3): taxonomy-superimposed graph
    mining in three steps.

    + {b Relabel} every vertex with the most general ancestor of its label,
      producing the most-generalized database [D_mg] (originals kept).
    + {b Mine pattern classes}: run gSpan over [D_mg]; every frequent
      pattern of [D_mg] is the most general member of a pattern class, and
      its embeddings are turned into a taxonomy-projected occurrence index.
    + {b Enumerate specialized patterns} per class from the occurrence index
      alone — bitset intersections instead of isomorphism tests — while
      eliminating over-generalized patterns.

    The result is minimal (no over-generalized patterns, Lemma 8) and
    complete (all non-over-generalized patterns with sufficient support,
    Lemma 9).

    Beyond the paper (whose implementation was single-threaded Java), Steps
    2 and 3 run end-to-end on a work-stealing pool of OCaml domains
    ({!Tsg_util.Pool.Exec}): gSpan seed subtrees are batched into mining
    tasks, occurrence indices are built on the mining domains, and batches
    of finished classes stream straight into specialization tasks on the
    same pool. Before the fan-out the run freezes its label tables
    ({!Tsg_graph.Label.freeze}), handing every domain a read-only snapshot,
    and per-domain scratch arenas ({!Tsg_util.Arena}) keep the hot bitset
    loops allocation-free. A run is described by a {!Spec.t} and executed
    by the single entry point {!run}. *)

type config = {
  min_support : float;  (** the paper's theta, in [0, 1] *)
  max_edges : int option;  (** optional cap on pattern size *)
  enhancements : Specialize.enhancements;
}

val default_config : config
(** theta = 0.2 (the paper's usual setting), no size cap, all enhancements
    on. *)

val baseline_config : config
(** The paper's "baseline" comparator: identical pipeline, all Section 3
    efficiency enhancements off. *)

type result = {
  patterns : Pattern.t list;
      (** canonically sorted; empty under a [`Stream] sink *)
  class_count : int;  (** frequent pattern classes found in step 2 *)
  pattern_count : int;
  completed : bool;
      (** [false] when a time budget — or, under [supervised], a failing
          root — cut mining short *)
  diagnostics : Tsg_util.Diagnostic.t list;
      (** supervised-run quarantine records ([POOL001], [POOL002],
          [FLT001]); always empty without [~supervised:true] *)
  relabel_wall_seconds : float;  (** step 1 (sequential: wall = CPU) *)
  mining_wall_seconds : float;
      (** step 2: gSpan + occurrence-index building, wall-clock from the
          start of mining until the last mining task finished
          (specialization may still be running — the phases overlap by
          design) *)
  mining_cpu_seconds : float;
      (** step 2 CPU time summed across mining tasks (over the reported
          roots); equals [mining_wall_seconds] with one domain *)
  enumerate_wall_seconds : float;
      (** step 3 wall-clock: first specialization task started to last one
          finished, across all domains *)
  enumerate_cpu_seconds : float;
      (** step 3 CPU time summed across specialization tasks (over the
          reported roots, including any resumed from a checkpoint);
          equals [enumerate_wall_seconds] with one domain *)
  total_wall_seconds : float;
  total_cpu_seconds : float;
      (** sum of the per-phase CPU times; with one domain this tracks
          [total_wall_seconds], with [d] domains it approaches [d] times
          the wall time when the run scales *)
  spec_stats : Specialize.stats;
  oi_entries : int;
      (** occurrence-index labels built across all classes (Lemma 4's
          space driver) *)
  oi_set_members : int;  (** total occurrence-set members across all OIs *)
  covered_graph_count : int;
      (** database graphs supporting at least one frequent class — the
          union of class support sets, merged per-domain at the join *)
  root_groups : ((int * int * int) * Pattern.t list) list;
      (** [result.patterns] partitioned by gSpan root: one entry per
          frequent 1-edge seed [(from_label, edge_label, to_label)] (in
          seed order, labels of the relabeled database [D_mg]), holding
          every pattern of that root's subtree, canonically sorted. The
          incremental pipeline caches these groups and re-mines only the
          roots a delta can touch. Populated for [`Gspan] runs with the
          [`Collect] sink; [[]] otherwise, and only trustworthy when
          [completed] is [true]. *)
}

type sink = [ `Collect | `Stream of (Pattern.t -> unit) ]
(** Where mined patterns go.

    [`Collect] gathers them into [result.patterns], canonically sorted
    ({!Pattern.sort}), so the output is byte-identical whatever the domain
    count, batching, or schedule. Under a budget that expires mid-run, the
    reported set is a prefix of the canonical root-task sequence (a root —
    one gSpan seed subtree, or one level-wise class — is reported
    atomically or not at all); how long that prefix is depends on timing,
    but its content for a given length never does, and an already-expired
    budget deterministically reports nothing.

    [`Stream f] delivers each pattern to [f] as its class completes and
    leaves [result.patterns] empty; memory stays proportional to the work
    in flight rather than the output. With one domain, patterns arrive in
    the canonical sequential order; with several, arrival order is
    unspecified ([f] is never called concurrently — calls are serialized)
    and a budgeted run streams whatever completed before the cut. *)

type checkpoint_spec = {
  path : string;  (** checkpoint file, created/refreshed atomically *)
  every_s : float;
      (** minimum seconds between snapshots; [0.0] snapshots after every
          completed root *)
  corpus_seq : int64;
      (** corpus version the run mines: the WAL sequence number for a
          pipeline-maintained database, [0L] for a static corpus. Stored
          in the snapshot; resuming against a different sequence raises
          {!Checkpoint.Error} with [CKPT003] (the snapshot describes a
          corpus that no longer exists). *)
}
(** Periodic crash-safe snapshots of completed roots (see {!Checkpoint}).
    Only meaningful under the [`Collect] sink ([`Stream] raises
    [Invalid_argument]). When [path] already holds a snapshot of the same
    taxonomy, database, and configuration (fingerprint-checked), the run
    {e resumes}: stored roots are skipped and merged, and the final
    pattern set is byte-identical to an uninterrupted run. A mismatched
    or corrupt snapshot raises {!Checkpoint.Error}. The file is deleted
    when the run completes. *)

type class_miner = [ `Gspan | `Level_wise ]
(** Which general-purpose miner powers Step 2: gSpan (depth-first, the
    paper's choice) or the FSG-style level-wise miner — the paper notes any
    of them can be extended with occurrence indices, and the outputs are
    identical (property-tested). gSpan decomposes into per-seed subtree
    tasks and mines in parallel; the level-wise miner is inherently
    breadth-first, so it mines sequentially while indexing and
    specialization still fan out across the pool. *)

(** A complete description of one mining run: what to mine (config,
    budget, miner), where patterns go (sink), and how to execute
    (executor, supervision, checkpointing, batching).

    Build one with {!Spec.collect} or {!Spec.stream} — both resolve every
    default at construction time, including the executor (so the domain
    count is decided exactly once, not re-read from the environment by the
    run) — then adjust with the [with_*] updates or plain record syntax,
    and hand it to {!run}. One spec can drive many runs; runs sharing a
    spec share its executor. *)
module Spec : sig
  type nonrec t = {
    config : config;
    budget : Tsg_util.Timer.Budget.budget;
    class_miner : class_miner;
    exec : Tsg_util.Pool.Exec.t;  (** sized executor Steps 2 and 3 share *)
    checkpoint : checkpoint_spec option;
    supervised : bool;
    sink : sink;
    root_batch : int option;
        (** roots per mining task; [None] auto-sizes to ~4 batches per
            domain. The result is identical for any value
            (property-tested) — this only tunes scheduling granularity. *)
    spec_batch : int option;
        (** classes per specialization task (default 4); same
            result-invariance as [root_batch] *)
    root_select : (int * int * int -> bool) option;
        (** mine only the gSpan roots whose seed 1-edge
            [(from_label, edge_label, to_label)] — labels of [D_mg],
            [from_label <= to_label] — satisfies the predicate. The
            selected roots produce exactly what a full run would produce
            for them (their subtrees are independent), which is how the
            incremental pipeline re-mines dirty roots. [None] mines
            everything. {!run} raises [Invalid_argument] when combined
            with [`Level_wise] (no seed decomposition) or with
            checkpointing (snapshot prefixes index the full root
            sequence). *)
  }

  val collect :
    ?config:config ->
    ?budget:Tsg_util.Timer.Budget.budget ->
    ?class_miner:class_miner ->
    ?exec:Tsg_util.Pool.Exec.t ->
    ?domains:int ->
    ?checkpoint:checkpoint_spec ->
    ?supervised:bool ->
    ?root_batch:int ->
    ?spec_batch:int ->
    ?root_select:(int * int * int -> bool) ->
    unit ->
    t
  (** Spec with the [`Collect] sink. [exec] (default a fresh executor)
      supplies the pool; [domains] is shorthand for
      [~exec:(Pool.Exec.create ~domains ())] and is ignored when [exec]
      is given. *)

  val stream :
    ?config:config ->
    ?budget:Tsg_util.Timer.Budget.budget ->
    ?class_miner:class_miner ->
    ?exec:Tsg_util.Pool.Exec.t ->
    ?domains:int ->
    ?supervised:bool ->
    ?root_batch:int ->
    ?spec_batch:int ->
    (Pattern.t -> unit) ->
    t
  (** Spec with a [`Stream] sink (checkpointing is not offered — it
      requires [`Collect]). *)

  val domains : t -> int
  (** Domain count of the spec's executor. *)

  val with_config : config -> t -> t

  val with_budget : Tsg_util.Timer.Budget.budget -> t -> t

  val with_class_miner : class_miner -> t -> t

  val with_exec : Tsg_util.Pool.Exec.t -> t -> t

  val with_domains : int -> t -> t
  (** Replaces the executor with a fresh one of the given size. *)

  val with_checkpoint : checkpoint_spec option -> t -> t

  val with_supervised : bool -> t -> t

  val with_sink : sink -> t -> t

  val with_root_select : (int * int * int -> bool) option -> t -> t
end

val run : Spec.t -> Tsg_taxonomy.Taxonomy.t -> Tsg_graph.Db.t -> result
(** Mine the database against the taxonomy as the spec describes. Every
    node label of every graph must be a label of the taxonomy.

    A one-domain executor runs the classic sequential pipeline — one class
    alive at a time, the paper's Step 2 memory profile. With more domains,
    Steps 2 and 3 fan out over the spec's executor; the run first freezes
    the taxonomy's label table so every domain reads an immutable
    snapshot. The pattern set and supports are identical across domain
    counts and batch sizes (property-tested).

    When the spec's budget expires the run stops early with
    [completed = false]; see {!sink} for exactly what an early stop
    reports.

    A checkpoint spec snapshots completed roots to disk and resumes a
    previous snapshot found at the same path; see {!checkpoint_spec}.
    Raises [Invalid_argument] when combined with a [`Stream] sink.

    [supervised] turns task failures — injected faults
    ({!Tsg_util.Fault}), per-task deadline overruns, stray exceptions —
    into {!result.diagnostics} instead of letting them escape: pool tasks
    are retried and quarantined per {!Tsg_util.Pool.Exec.run_supervised},
    and the reported set is still a prefix of the canonical root sequence,
    cut before the first root of the first failing task. Unsupervised,
    such an exception propagates to the caller (after snapshotting
    progress when checkpointing is on). *)

val frequent_label_filter :
  Tsg_taxonomy.Taxonomy.t -> Tsg_graph.Db.t -> min_support:int ->
  (Tsg_graph.Label.id -> bool)
(** Enhancement (b)'s predicate: keep a taxonomy label iff nodes labeled
    with it {e or any descendant} occur in at least [min_support] distinct
    graphs (its generalized size-1 support). Upward-closed, so pruned
    occurrence indices stay connected. *)
