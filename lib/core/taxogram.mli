(** The Taxogram algorithm (paper Section 3): taxonomy-superimposed graph
    mining in three steps.

    + {b Relabel} every vertex with the most general ancestor of its label,
      producing the most-generalized database [D_mg] (originals kept).
    + {b Mine pattern classes}: run gSpan over [D_mg]; every frequent
      pattern of [D_mg] is the most general member of a pattern class, and
      its embeddings are turned into a taxonomy-projected occurrence index.
    + {b Enumerate specialized patterns} per class from the occurrence index
      alone — bitset intersections instead of isomorphism tests — while
      eliminating over-generalized patterns.

    The result is minimal (no over-generalized patterns, Lemma 8) and
    complete (all non-over-generalized patterns with sufficient support,
    Lemma 9). *)

type config = {
  min_support : float;  (** the paper's theta, in [0, 1] *)
  max_edges : int option;  (** optional cap on pattern size *)
  enhancements : Specialize.enhancements;
}

val default_config : config
(** theta = 0.2 (the paper's usual setting), no size cap, all enhancements
    on. *)

val baseline_config : config
(** The paper's "baseline" comparator: identical pipeline, all Section 3
    efficiency enhancements off. *)

type result = {
  patterns : Pattern.t list;
  class_count : int;  (** frequent pattern classes found in step 2 *)
  pattern_count : int;
  completed : bool;  (** [false] when a time budget cut mining short *)
  relabel_seconds : float;
  mining_seconds : float;  (** step 2: gSpan + occurrence-index building *)
  enumerate_seconds : float;  (** step 3 *)
  total_seconds : float;
  spec_stats : Specialize.stats;
  oi_entries : int;
      (** occurrence-index labels built across all classes (Lemma 4's
          space driver) *)
  oi_set_members : int;  (** total occurrence-set members across all OIs *)
}

type class_miner = [ `Gspan | `Level_wise ]
(** Which general-purpose miner powers Step 2: gSpan (depth-first, the
    paper's choice) or the FSG-style level-wise miner — the paper notes any
    of them can be extended with occurrence indices, and the outputs are
    identical (property-tested). *)

val run :
  ?config:config ->
  ?budget:Tsg_util.Timer.Budget.budget ->
  ?class_miner:class_miner ->
  Tsg_taxonomy.Taxonomy.t ->
  Tsg_graph.Db.t ->
  result
(** Mine the database against the taxonomy. Every node label of every graph
    must be a label of the taxonomy. When [budget] (default unlimited)
    expires the run stops early with [completed = false] and the patterns
    found so far. *)

val run_streaming :
  ?config:config ->
  ?budget:Tsg_util.Timer.Budget.budget ->
  ?class_miner:class_miner ->
  Tsg_taxonomy.Taxonomy.t ->
  Tsg_graph.Db.t ->
  (Pattern.t -> unit) ->
  result
(** As {!run} but delivering patterns through a callback as classes complete
    (the result's [patterns] list is left empty). Memory stays proportional
    to one pattern class at a time, as in the paper's Step 2 analysis. *)

val run_parallel :
  ?config:config ->
  ?domains:int ->
  Tsg_taxonomy.Taxonomy.t ->
  Tsg_graph.Db.t ->
  result
(** Multicore variant (beyond the paper, whose implementation was
    single-threaded Java): Step 2 runs sequentially but materializes every
    pattern class with its occurrence index, then Step 3 enumerates the
    classes across [domains] OCaml domains (default:
    [Domain.recommended_domain_count ()], capped at 8). Trades the
    one-class-at-a-time memory profile for parallel specialization. The
    pattern set equals {!run}'s (order canonicalized); [spec_stats] are
    summed across domains and [enumerate_seconds] is wall-clock, not CPU
    time. *)

val frequent_label_filter :
  Tsg_taxonomy.Taxonomy.t -> Tsg_graph.Db.t -> min_support:int ->
  (Tsg_graph.Label.id -> bool)
(** Enhancement (b)'s predicate: keep a taxonomy label iff nodes labeled
    with it {e or any descendant} occur in at least [min_support] distinct
    graphs (its generalized size-1 support). Upward-closed, so pruned
    occurrence indices stay connected. *)
