(** Mined patterns: a connected labeled graph together with its support in
    the database it was mined from (paper Section 2 definitions). *)

type t = {
  graph : Tsg_graph.Graph.t;
      (** node labels are taxonomy label ids; node ids are canonical
          positions (DFS indices of the pattern class) *)
  support_count : int;  (** number of database graphs with an occurrence *)
  support : float;  (** [support_count / |D|] *)
  support_set : Tsg_util.Bitset.t;  (** the paper's [GenSet], over graph ids *)
}

val make : db_size:int -> Tsg_graph.Graph.t -> Tsg_util.Bitset.t -> t

val key : t -> string
(** Canonical (minimum DFS code) key; equal iff the pattern graphs are
    isomorphic with identical labels. *)

val compare : t -> t -> int
(** Orders by canonical key; total, isomorphism-invariant. *)

val equal_sets : t list -> t list -> bool
(** Same pattern multiset (up to isomorphism) with the same support sets —
    the equivalence used to cross-check the mining algorithms. *)

val sort : t list -> t list

val edge_count : t -> int

val node_count : t -> int

val pp : names:Tsg_graph.Label.t -> Format.formatter -> t -> unit
(** Human-readable rendering using label names; edges print as [(u-v)] for
    edge-label 0 and [(u-v/l)] otherwise. *)

val to_string : names:Tsg_graph.Label.t -> t -> string
