module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Timer = Tsg_util.Timer
module Gspan = Tsg_gspan.Gspan

type config = {
  min_support : float;
  max_edges : int option;
  enhancements : Specialize.enhancements;
}

let default_config =
  { min_support = 0.2; max_edges = None; enhancements = Specialize.all_on }

let baseline_config = { default_config with enhancements = Specialize.all_off }

type result = {
  patterns : Pattern.t list;
  class_count : int;
  pattern_count : int;
  completed : bool;
  relabel_seconds : float;
  mining_seconds : float;
  enumerate_seconds : float;
  total_seconds : float;
  spec_stats : Specialize.stats;
  oi_entries : int;
  oi_set_members : int;
}

exception Out_of_time_in_mining

let frequent_label_filter taxonomy db ~min_support =
  let n = Taxonomy.label_count taxonomy in
  let counts = Array.make n 0 in
  let stamp = Array.make n (-1) in
  Db.iteri
    (fun gid g ->
      List.iter
        (fun l ->
          Bitset.iter
            (fun anc ->
              if stamp.(anc) <> gid then begin
                stamp.(anc) <- gid;
                counts.(anc) <- counts.(anc) + 1
              end)
            (Taxonomy.ancestor_set taxonomy l))
        (Graph.distinct_node_labels g))
    db;
  fun l -> l >= 0 && l < n && counts.(l) >= min_support

type class_miner = [ `Gspan | `Level_wise ]

let run_streaming ?(config = default_config)
    ?(budget = Timer.Budget.unlimited) ?(class_miner = `Gspan) taxonomy db
    emit =
  let total_timer = Timer.start () in
  let relabeled, relabel_seconds = Timer.time (fun () -> Relabel.db taxonomy db) in
  let min_support_count = Db.support_count_to_threshold db config.min_support in
  let keep_label =
    if config.enhancements.Specialize.label_prefilter then
      Some (frequent_label_filter taxonomy db ~min_support:min_support_count)
    else None
  in
  let spec_stats = Specialize.fresh_stats () in
  let class_count = ref 0 in
  let pattern_count = ref 0 in
  let enumerate_seconds = ref 0.0 in
  let oi_entries = ref 0 in
  let oi_set_members = ref 0 in
  let mining_timer = Timer.start () in
  let mine_classes =
    match class_miner with
    | `Gspan -> Gspan.mine
    | `Level_wise -> Tsg_gspan.Level_miner.mine
  in
  let completed =
    try
      mine_classes ?max_edges:config.max_edges ~min_support:min_support_count
        relabeled (fun class_pattern ->
          if Timer.Budget.exceeded budget then raise Out_of_time_in_mining;
          incr class_count;
          let oi =
            Occ_index.build ~taxonomy ~original:db ?keep_label class_pattern
          in
          let sz = Occ_index.size oi in
          oi_entries := !oi_entries + sz.Occ_index.entries;
          oi_set_members := !oi_set_members + sz.Occ_index.set_members;
          let t = Timer.start () in
          Fun.protect
            ~finally:(fun () ->
              enumerate_seconds := !enumerate_seconds +. Timer.elapsed_s t)
            (fun () ->
              Specialize.enumerate ~taxonomy ~min_support:min_support_count
                ~enhancements:config.enhancements ~stats:spec_stats ~budget oi
                (fun p ->
                  incr pattern_count;
                  emit p)));
      true
    with Out_of_time_in_mining | Specialize.Out_of_time -> false
  in
  let mining_total = Timer.elapsed_s mining_timer in
  {
    patterns = [];
    class_count = !class_count;
    pattern_count = !pattern_count;
    completed;
    relabel_seconds;
    mining_seconds = mining_total -. !enumerate_seconds;
    enumerate_seconds = !enumerate_seconds;
    total_seconds = Timer.elapsed_s total_timer;
    spec_stats;
    oi_entries = !oi_entries;
    oi_set_members = !oi_set_members;
  }

let run_parallel ?(config = default_config) ?domains taxonomy db =
  let total_timer = Timer.start () in
  let relabeled, relabel_seconds = Timer.time (fun () -> Relabel.db taxonomy db) in
  let min_support_count = Db.support_count_to_threshold db config.min_support in
  let keep_label =
    if config.enhancements.Specialize.label_prefilter then
      Some (frequent_label_filter taxonomy db ~min_support:min_support_count)
    else None
  in
  (* step 2, sequential: collect every class's occurrence index *)
  let mining_timer = Timer.start () in
  let indices = ref [] in
  Gspan.mine ?max_edges:config.max_edges ~min_support:min_support_count
    relabeled (fun class_pattern ->
      indices :=
        Occ_index.build ~taxonomy ~original:db ?keep_label class_pattern
        :: !indices);
  let mining_seconds = Timer.elapsed_s mining_timer in
  let class_list = Array.of_list (List.rev !indices) in
  let class_count = Array.length class_list in
  let oi_entries = ref 0 in
  let oi_set_members = ref 0 in
  Array.iter
    (fun oi ->
      let sz = Occ_index.size oi in
      oi_entries := !oi_entries + sz.Occ_index.entries;
      oi_set_members := !oi_set_members + sz.Occ_index.set_members)
    class_list;
  (* step 3, parallel: one worker per domain pulls classes off a shared
     counter; per-domain outputs and stats merge at the end *)
  let domains =
    let d =
      Option.value ~default:(min 8 (Domain.recommended_domain_count ())) domains
    in
    max 1 (min d (max 1 class_count))
  in
  let enumerate_timer = Timer.start () in
  let next = Atomic.make 0 in
  let worker () =
    let stats = Specialize.fresh_stats () in
    let acc = ref [] in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < class_count then begin
        Specialize.enumerate ~taxonomy ~min_support:min_support_count
          ~enhancements:config.enhancements ~stats class_list.(i) (fun p ->
            acc := p :: !acc);
        loop ()
      end
    in
    loop ();
    (stats, !acc)
  in
  let handles = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
  let first = worker () in
  let results = first :: List.map Domain.join handles in
  let enumerate_seconds = Timer.elapsed_s enumerate_timer in
  let spec_stats = Specialize.fresh_stats () in
  let patterns =
    List.concat_map
      (fun ((s : Specialize.stats), acc) ->
        spec_stats.Specialize.intersections <-
          spec_stats.Specialize.intersections + s.Specialize.intersections;
        spec_stats.Specialize.visited <-
          spec_stats.Specialize.visited + s.Specialize.visited;
        spec_stats.Specialize.emitted <-
          spec_stats.Specialize.emitted + s.Specialize.emitted;
        spec_stats.Specialize.over_generalized <-
          spec_stats.Specialize.over_generalized + s.Specialize.over_generalized;
        acc)
      results
    |> Pattern.sort
  in
  {
    patterns;
    class_count;
    pattern_count = List.length patterns;
    completed = true;
    relabel_seconds;
    mining_seconds;
    enumerate_seconds;
    total_seconds = Timer.elapsed_s total_timer;
    spec_stats;
    oi_entries = !oi_entries;
    oi_set_members = !oi_set_members;
  }

let run ?config ?budget ?class_miner taxonomy db =
  let acc = ref [] in
  let result =
    run_streaming ?config ?budget ?class_miner taxonomy db (fun p ->
        acc := p :: !acc)
  in
  { result with patterns = List.rev !acc }
