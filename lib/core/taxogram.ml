module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Timer = Tsg_util.Timer
module Pool = Tsg_util.Pool
module Gspan = Tsg_gspan.Gspan

type config = {
  min_support : float;
  max_edges : int option;
  enhancements : Specialize.enhancements;
}

let default_config =
  { min_support = 0.2; max_edges = None; enhancements = Specialize.all_on }

let baseline_config = { default_config with enhancements = Specialize.all_off }

type result = {
  patterns : Pattern.t list;
  class_count : int;
  pattern_count : int;
  completed : bool;
  relabel_seconds : float;
  mining_seconds : float;
  enumerate_seconds : float;
  total_seconds : float;
  spec_stats : Specialize.stats;
  oi_entries : int;
  oi_set_members : int;
  covered_graph_count : int;
}

type sink = [ `Collect | `Stream of (Pattern.t -> unit) ]

exception Out_of_time_in_mining

let frequent_label_filter taxonomy db ~min_support =
  let n = Taxonomy.label_count taxonomy in
  let counts = Array.make n 0 in
  let stamp = Array.make n (-1) in
  Db.iteri
    (fun gid g ->
      List.iter
        (fun l ->
          Bitset.iter
            (fun anc ->
              if stamp.(anc) <> gid then begin
                stamp.(anc) <- gid;
                counts.(anc) <- counts.(anc) + 1
              end)
            (Taxonomy.ancestor_set taxonomy l))
        (Graph.distinct_node_labels g))
    db;
  fun l -> l >= 0 && l < n && counts.(l) >= min_support

type class_miner = [ `Gspan | `Level_wise ]

let add_stats (dst : Specialize.stats) (s : Specialize.stats) =
  dst.Specialize.intersections <-
    dst.Specialize.intersections + s.Specialize.intersections;
  dst.Specialize.visited <- dst.Specialize.visited + s.Specialize.visited;
  dst.Specialize.emitted <- dst.Specialize.emitted + s.Specialize.emitted;
  dst.Specialize.over_generalized <-
    dst.Specialize.over_generalized + s.Specialize.over_generalized

let keep_label_of config taxonomy db ~min_support =
  if config.enhancements.Specialize.label_prefilter then
    Some (frequent_label_filter taxonomy db ~min_support)
  else None

(* --- sequential path (domains = 1) ----------------------------------- *)

(* Identical to the pre-redesign streaming pipeline, except that work is
   committed at root granularity (a gSpan seed subtree, or one level-wise
   class): under a budgeted [`Collect] run, a root cut short discards its
   partial work so the reported set is always a prefix of the canonical
   root sequence — the same rule the pool path applies at its join. *)
let run_sequential ~config ~budget ~class_miner ~sink taxonomy db =
  let total_timer = Timer.start () in
  let relabeled, relabel_seconds =
    Timer.time (fun () -> Relabel.db taxonomy db)
  in
  let min_support_count = Db.support_count_to_threshold db config.min_support in
  let keep_label =
    keep_label_of config taxonomy db ~min_support:min_support_count
  in
  let db_size = Db.size db in
  let spec_stats = Specialize.fresh_stats () in
  let class_count = ref 0 in
  let pattern_count = ref 0 in
  let enumerate_seconds = ref 0.0 in
  let oi_entries = ref 0 in
  let oi_set_members = ref 0 in
  let covered = Bitset.create db_size in
  let collected = ref [] in
  (* per-root scratch, committed only when the root completes *)
  let r_classes = ref 0 in
  let r_entries = ref 0 in
  let r_members = ref 0 in
  let r_enum = ref 0.0 in
  let r_patterns = ref [] in
  let r_stats = ref (Specialize.fresh_stats ()) in
  let r_covered = Bitset.create db_size in
  let commit_root () =
    class_count := !class_count + !r_classes;
    oi_entries := !oi_entries + !r_entries;
    oi_set_members := !oi_set_members + !r_members;
    enumerate_seconds := !enumerate_seconds +. !r_enum;
    add_stats spec_stats !r_stats;
    Bitset.union_into ~dst:covered covered r_covered;
    (match sink with
    | `Collect ->
      pattern_count := !pattern_count + List.length !r_patterns;
      collected := List.rev_append !r_patterns !collected
    | `Stream _ -> ());
    r_classes := 0;
    r_entries := 0;
    r_members := 0;
    r_enum := 0.0;
    r_patterns := [];
    r_stats := Specialize.fresh_stats ();
    Bitset.clear r_covered
  in
  let mining_timer = Timer.start () in
  let process_class (class_pattern : Gspan.pattern) =
    if Timer.Budget.exceeded budget then raise Out_of_time_in_mining;
    incr r_classes;
    Bitset.union_into ~dst:r_covered r_covered
      class_pattern.Gspan.support_set;
    let oi =
      Occ_index.build ~taxonomy ~original:db ?keep_label class_pattern
    in
    let sz = Occ_index.size oi in
    r_entries := !r_entries + sz.Occ_index.entries;
    r_members := !r_members + sz.Occ_index.set_members;
    let t = Timer.start () in
    Fun.protect
      ~finally:(fun () -> r_enum := !r_enum +. Timer.elapsed_s t)
      (fun () ->
        Specialize.enumerate ~taxonomy ~min_support:min_support_count
          ~enhancements:config.enhancements ~stats:!r_stats ~budget oi
          (fun p ->
            match sink with
            | `Stream emit ->
              incr pattern_count;
              emit p
            | `Collect -> r_patterns := p :: !r_patterns))
  in
  let completed =
    try
      (match class_miner with
      | `Gspan ->
        List.iter
          (fun subtree ->
            subtree process_class;
            commit_root ())
          (Gspan.mine_tasks ?max_edges:config.max_edges
             ~min_support:min_support_count relabeled)
      | `Level_wise ->
        Tsg_gspan.Level_miner.mine ?max_edges:config.max_edges
          ~min_support:min_support_count relabeled (fun cp ->
            process_class cp;
            commit_root ()));
      true
    with Out_of_time_in_mining | Specialize.Out_of_time -> false
  in
  let mining_total = Timer.elapsed_s mining_timer in
  {
    patterns =
      (match sink with
      | `Collect -> Pattern.sort !collected
      | `Stream _ -> []);
    class_count = !class_count;
    pattern_count = !pattern_count;
    completed;
    relabel_seconds;
    mining_seconds = mining_total -. !enumerate_seconds;
    enumerate_seconds = !enumerate_seconds;
    total_seconds = Timer.elapsed_s total_timer;
    spec_stats;
    oi_entries = !oi_entries;
    oi_set_members = !oi_set_members;
    covered_graph_count = Bitset.cardinal covered;
  }

(* --- pool path (domains > 1) ------------------------------------------ *)

(* Every pool task returns one of these; results merge at the join, where
   bitset unions and stat sums replace any hot-path locking. *)
type task_outcome = {
  t_ok : bool;  (* subtree explored / class enumerated to completion *)
  t_classes : int;
  t_patterns : Pattern.t list;  (* newest first; spec tasks only *)
  t_stats : Specialize.stats option;
  t_enum_s : float;
  t_entries : int;
  t_members : int;
  t_covered : Bitset.t option;
}

let mining_outcome ~ok ~classes ~entries ~members ~covered =
  {
    t_ok = ok;
    t_classes = classes;
    t_patterns = [];
    t_stats = None;
    t_enum_s = 0.0;
    t_entries = entries;
    t_members = members;
    t_covered = Some covered;
  }

let run_pool ~config ~budget ~class_miner ~domains ~sink taxonomy db =
  let total_timer = Timer.start () in
  let relabeled, relabel_seconds =
    Timer.time (fun () -> Relabel.db taxonomy db)
  in
  let min_support_count = Db.support_count_to_threshold db config.min_support in
  let keep_label =
    keep_label_of config taxonomy db ~min_support:min_support_count
  in
  let db_size = Db.size db in
  let pool = Pool.create ~domains () in
  let emit_mutex = Mutex.create () in
  let stream_classes = Atomic.make 0 in
  let stream_emitted = Atomic.make 0 in
  (* step-3 work for one occurrence index; forked from mining tasks *)
  let specialize oi _ctx =
    let stats = Specialize.fresh_stats () in
    let acc = ref [] in
    let t = Timer.start () in
    let ok =
      match
        Specialize.enumerate ~taxonomy ~min_support:min_support_count
          ~enhancements:config.enhancements ~stats ~budget oi (fun p ->
            match sink with
            | `Collect -> acc := p :: !acc
            | `Stream emit ->
              Atomic.incr stream_emitted;
              Mutex.lock emit_mutex;
              Fun.protect
                ~finally:(fun () -> Mutex.unlock emit_mutex)
                (fun () -> emit p))
      with
      | () -> true
      | exception Specialize.Out_of_time -> false
    in
    {
      t_ok = ok;
      t_classes = 0;
      t_patterns = !acc;
      t_stats = Some stats;
      t_enum_s = Timer.elapsed_s t;
      t_entries = 0;
      t_members = 0;
      t_covered = None;
    }
  in
  (* step-2 work shared by both miners: project one mined class into its
     occurrence index on this domain, then hand it to a spec worker *)
  let index_class ~covered ~entries ~members ctx (cp : Gspan.pattern) =
    Bitset.union_into ~dst:covered covered cp.Gspan.support_set;
    let oi = Occ_index.build ~taxonomy ~original:db ?keep_label cp in
    let sz = Occ_index.size oi in
    entries := !entries + sz.Occ_index.entries;
    members := !members + sz.Occ_index.set_members;
    (match sink with
    | `Stream _ -> Atomic.incr stream_classes
    | `Collect -> ());
    Pool.fork ctx (specialize oi)
  in
  let mining_timer = Timer.start () in
  let mining_wall = Atomic.make 0.0 in
  let outcomes, mining_ok, mining_seconds =
    match class_miner with
    | `Gspan ->
      (* each frequent 1-edge DFS-code root is a task; its subtree is
         explored and indexed on whichever domain runs (or steals) it *)
      let subtrees =
        Gspan.mine_tasks ?max_edges:config.max_edges
          ~min_support:min_support_count relabeled
      in
      let mining_left = Atomic.make (List.length subtrees) in
      let root_task subtree ctx =
        let classes = ref 0 in
        let entries = ref 0 in
        let members = ref 0 in
        let covered = Bitset.create db_size in
        let ok =
          try
            subtree (fun cp ->
                if Timer.Budget.exceeded budget then
                  raise Out_of_time_in_mining;
                incr classes;
                index_class ~covered ~entries ~members ctx cp);
            true
          with Out_of_time_in_mining -> false
        in
        if Atomic.fetch_and_add mining_left (-1) = 1 then
          Atomic.set mining_wall (Timer.elapsed_s mining_timer);
        mining_outcome ~ok ~classes:!classes ~entries:!entries
          ~members:!members ~covered
      in
      let outcomes = Pool.run pool (List.map root_task subtrees) in
      (outcomes, true, Atomic.get mining_wall)
    | `Level_wise ->
      (* the level-wise miner is inherently breadth-first and sequential;
         classes stream out of it into per-class pool tasks (index +
         specialize), so step 3 still fans out across the pool *)
      let classes = ref [] in
      let mining_ok =
        try
          Tsg_gspan.Level_miner.mine ?max_edges:config.max_edges
            ~min_support:min_support_count relabeled (fun cp ->
              if Timer.Budget.exceeded budget then raise Out_of_time_in_mining;
              classes := cp :: !classes);
          true
        with Out_of_time_in_mining -> false
      in
      let mining_seconds = Timer.elapsed_s mining_timer in
      let class_task cp ctx =
        let entries = ref 0 in
        let members = ref 0 in
        let covered = Bitset.create db_size in
        index_class ~covered ~entries ~members ctx cp;
        mining_outcome ~ok:true ~classes:1 ~entries:!entries
          ~members:!members ~covered
      in
      let outcomes = Pool.run pool (List.map class_task (List.rev !classes)) in
      (outcomes, mining_ok, mining_seconds)
  in
  (* the join: results arrive sorted by deterministic task id. A root is
     complete when its mining task and every spec task it forked finished;
     only the maximal complete prefix of roots is reported, so what a
     budgeted [`Collect] run returns is a prefix of the canonical root
     sequence no matter how work was scheduled or stolen. *)
  let root = function [] -> 0 | i :: _ -> i in
  let first_bad =
    List.fold_left
      (fun acc (id, o) -> if o.t_ok then acc else min acc (root id))
      max_int outcomes
  in
  let included = List.filter (fun (id, _) -> root id < first_bad) outcomes in
  let completed = mining_ok && first_bad = max_int in
  let spec_stats = Specialize.fresh_stats () in
  let class_count = ref 0 in
  let oi_entries = ref 0 in
  let oi_set_members = ref 0 in
  let enumerate_seconds = ref 0.0 in
  let covered = Bitset.create db_size in
  let patterns_rev = ref [] in
  List.iter
    (fun (_, o) ->
      class_count := !class_count + o.t_classes;
      oi_entries := !oi_entries + o.t_entries;
      oi_set_members := !oi_set_members + o.t_members;
      enumerate_seconds := !enumerate_seconds +. o.t_enum_s;
      (match o.t_stats with Some s -> add_stats spec_stats s | None -> ());
      (match o.t_covered with
      | Some c -> Bitset.union_into ~dst:covered covered c
      | None -> ());
      patterns_rev := List.rev_append o.t_patterns !patterns_rev)
    included;
  let patterns =
    match sink with
    | `Collect -> Pattern.sort !patterns_rev
    | `Stream _ -> []
  in
  {
    patterns;
    class_count =
      (match sink with
      | `Collect -> !class_count
      | `Stream _ -> Atomic.get stream_classes);
    pattern_count =
      (match sink with
      | `Collect -> List.length patterns
      | `Stream _ -> Atomic.get stream_emitted);
    completed;
    relabel_seconds;
    mining_seconds;
    enumerate_seconds = !enumerate_seconds;
    total_seconds = Timer.elapsed_s total_timer;
    spec_stats;
    oi_entries = !oi_entries;
    oi_set_members = !oi_set_members;
    covered_graph_count = Bitset.cardinal covered;
  }

(* --- the one entry point ---------------------------------------------- *)

let run ?(config = default_config) ?(budget = Timer.Budget.unlimited)
    ?(class_miner = `Gspan) ?domains ~sink taxonomy db =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Pool.default_domains ()
  in
  if domains = 1 then run_sequential ~config ~budget ~class_miner ~sink taxonomy db
  else run_pool ~config ~budget ~class_miner ~domains ~sink taxonomy db

(* --- deprecated wrappers ---------------------------------------------- *)

let run_streaming ?config ?budget ?class_miner taxonomy db emit =
  run ?config ?budget ?class_miner ~domains:1 ~sink:(`Stream emit) taxonomy db

let run_parallel ?config ?domains taxonomy db =
  run ?config ?domains ~sink:`Collect taxonomy db
