module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Label = Tsg_graph.Label
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Timer = Tsg_util.Timer
module Pool = Tsg_util.Pool
module Fault = Tsg_util.Fault
module Diagnostic = Tsg_util.Diagnostic
module Gspan = Tsg_gspan.Gspan

type config = {
  min_support : float;
  max_edges : int option;
  enhancements : Specialize.enhancements;
}

let default_config =
  { min_support = 0.2; max_edges = None; enhancements = Specialize.all_on }

let baseline_config = { default_config with enhancements = Specialize.all_off }

type result = {
  patterns : Pattern.t list;
  class_count : int;
  pattern_count : int;
  completed : bool;
  diagnostics : Diagnostic.t list;
  relabel_wall_seconds : float;
  mining_wall_seconds : float;
  mining_cpu_seconds : float;
  enumerate_wall_seconds : float;
  enumerate_cpu_seconds : float;
  total_wall_seconds : float;
  total_cpu_seconds : float;
  spec_stats : Specialize.stats;
  oi_entries : int;
  oi_set_members : int;
  covered_graph_count : int;
  root_groups : ((int * int * int) * Pattern.t list) list;
}

type sink = [ `Collect | `Stream of (Pattern.t -> unit) ]

type checkpoint_spec = { path : string; every_s : float; corpus_seq : int64 }

type class_miner = [ `Gspan | `Level_wise ]

exception Out_of_time_in_mining

(* raised (and caught) internally when a supervised sequential root fails *)
exception Supervised_stop

let frequent_label_filter taxonomy db ~min_support =
  let n = Taxonomy.label_count taxonomy in
  let counts = Array.make n 0 in
  let stamp = Array.make n (-1) in
  Db.iteri
    (fun gid g ->
      List.iter
        (fun l ->
          Bitset.iter
            (fun anc ->
              if stamp.(anc) <> gid then begin
                stamp.(anc) <- gid;
                counts.(anc) <- counts.(anc) + 1
              end)
            (Taxonomy.ancestor_set taxonomy l))
        (Graph.distinct_node_labels g))
    db;
  fun l -> l >= 0 && l < n && counts.(l) >= min_support

let add_stats (dst : Specialize.stats) (s : Specialize.stats) =
  dst.Specialize.intersections <-
    dst.Specialize.intersections + s.Specialize.intersections;
  dst.Specialize.visited <- dst.Specialize.visited + s.Specialize.visited;
  dst.Specialize.emitted <- dst.Specialize.emitted + s.Specialize.emitted;
  dst.Specialize.over_generalized <-
    dst.Specialize.over_generalized + s.Specialize.over_generalized

let keep_label_of config taxonomy db ~min_support =
  if config.enhancements.Specialize.label_prefilter then
    Some (frequent_label_filter taxonomy db ~min_support)
  else None

(* --- the run specification -------------------------------------------- *)

module Spec = struct
  type nonrec t = {
    config : config;
    budget : Timer.Budget.budget;
    class_miner : class_miner;
    exec : Pool.Exec.t;
    checkpoint : checkpoint_spec option;
    supervised : bool;
    sink : sink;
    root_batch : int option;
    spec_batch : int option;
    root_select : (int * int * int -> bool) option;
  }

  let make ?(config = default_config) ?(budget = Timer.Budget.unlimited)
      ?(class_miner = `Gspan) ?exec ?domains ?checkpoint ?(supervised = false)
      ?root_batch ?spec_batch ?root_select sink =
    let exec =
      match exec with Some e -> e | None -> Pool.Exec.create ?domains ()
    in
    {
      config;
      budget;
      class_miner;
      exec;
      checkpoint;
      supervised;
      sink;
      root_batch;
      spec_batch;
      root_select;
    }

  let collect ?config ?budget ?class_miner ?exec ?domains ?checkpoint
      ?supervised ?root_batch ?spec_batch ?root_select () =
    make ?config ?budget ?class_miner ?exec ?domains ?checkpoint ?supervised
      ?root_batch ?spec_batch ?root_select `Collect

  let stream ?config ?budget ?class_miner ?exec ?domains ?supervised
      ?root_batch ?spec_batch emit =
    make ?config ?budget ?class_miner ?exec ?domains ?supervised ?root_batch
      ?spec_batch (`Stream emit)

  let domains t = Pool.Exec.domains t.exec

  let with_config config t = { t with config }

  let with_budget budget t = { t with budget }

  let with_class_miner class_miner t = { t with class_miner }

  let with_exec exec t = { t with exec }

  let with_domains d t = { t with exec = Pool.Exec.create ~domains:d () }

  let with_checkpoint checkpoint t = { t with checkpoint }

  let with_supervised supervised t = { t with supervised }

  let with_sink sink t = { t with sink }

  let with_root_select root_select t = { t with root_select }
end

(* --- checkpoint plumbing shared by both paths ------------------------- *)

(* the spec plus everything resolved up front in [run]: the fingerprint of
   this run's inputs and the previous snapshot, if one was on disk *)
type ckpt_ctx = {
  ck_spec : checkpoint_spec;
  ck_fp : int64;
  ck_loaded : Checkpoint.t option;
}

let fingerprint_params ~config ~class_miner =
  Printf.sprintf "v1 ms=%h me=%s a=%b b=%b c=%b d=%b miner=%s"
    config.min_support
    (match config.max_edges with None -> "-" | Some n -> string_of_int n)
    config.enhancements.Specialize.child_pruning
    config.enhancements.Specialize.label_prefilter
    config.enhancements.Specialize.start_preprocess
    config.enhancements.Specialize.collapse_equal_children
    (match class_miner with `Gspan -> "gspan" | `Level_wise -> "level")

(* validate the loaded snapshot once the run knows its root count, and
   return the completed-root prefix to skip *)
let stored_entries ckpt ~db_size ~roots_total =
  match ckpt with
  | None -> []
  | Some { ck_loaded = None; _ } -> []
  | Some { ck_spec; ck_fp; ck_loaded = Some t } ->
    Checkpoint.check ~fingerprint:ck_fp ~corpus_seq:ck_spec.corpus_seq
      ~db_size ~roots_total t;
    t.Checkpoint.entries

(* accumulates the completed-root prefix and writes snapshots, at most one
   per [every_s] (a forced flush ignores the interval) *)
type saver = {
  sv_ctx : ckpt_ctx;
  sv_db_size : int;
  sv_roots_total : int;
  mutable sv_prefix : Checkpoint.entry list;  (* newest first *)
  mutable sv_last : float;
}

let saver_of ckpt ~db_size ~roots_total ~stored =
  Option.map
    (fun c ->
      {
        sv_ctx = c;
        sv_db_size = db_size;
        sv_roots_total = roots_total;
        sv_prefix = List.rev stored;
        sv_last = neg_infinity;
      })
    ckpt

let saver_flush sv =
  Checkpoint.save sv.sv_ctx.ck_spec.path
    {
      Checkpoint.fingerprint = sv.sv_ctx.ck_fp;
      corpus_seq = sv.sv_ctx.ck_spec.corpus_seq;
      db_size = sv.sv_db_size;
      roots_total = sv.sv_roots_total;
      entries = List.rev sv.sv_prefix;
    };
  sv.sv_last <- Unix.gettimeofday ()

let saver_record sv entry =
  sv.sv_prefix <- entry :: sv.sv_prefix;
  if Unix.gettimeofday () -. sv.sv_last >= sv.sv_ctx.ck_spec.every_s then
    saver_flush sv

(* a finished run deletes its checkpoint; an early stop snapshots it *)
let saver_finish sv ~completed =
  if completed then (
    try Sys.remove sv.sv_ctx.ck_spec.path with Sys_error _ -> ())
  else saver_flush sv

(* --- sequential path (domains = 1) ----------------------------------- *)

(* Identical to the pre-redesign streaming pipeline, except that work is
   committed at root granularity (a gSpan seed subtree, or one level-wise
   class): under a budgeted [`Collect] run, a root cut short discards its
   partial work so the reported set is always a prefix of the canonical
   root sequence — the same rule the pool path applies at its join.
   Sequentially the phases never overlap, so each phase's wall clock and
   CPU time coincide. *)
let run_sequential ~config ~budget ~class_miner ~sink ~ckpt ~supervised
    ~root_select taxonomy db =
  let total_timer = Timer.start () in
  let relabeled, relabel_wall =
    Timer.time (fun () -> Relabel.db taxonomy db)
  in
  let min_support_count = Db.support_count_to_threshold db config.min_support in
  let keep_label =
    keep_label_of config taxonomy db ~min_support:min_support_count
  in
  let db_size = Db.size db in
  let spec_stats = Specialize.fresh_stats () in
  let class_count = ref 0 in
  let pattern_count = ref 0 in
  let enumerate_seconds = ref 0.0 in
  let oi_entries = ref 0 in
  let oi_set_members = ref 0 in
  let covered = Bitset.create db_size in
  let collected = ref [] in
  let diagnostics = ref [] in
  let mining_timer = Timer.start () in
  let seed_tasks =
    match class_miner with
    | `Gspan ->
      let l =
        Gspan.mine_seed_tasks ?max_edges:config.max_edges
          ~min_support:min_support_count relabeled
      in
      Some
        (match root_select with
        | None -> l
        | Some keep -> List.filter (fun (seed, _) -> keep seed) l)
    | `Level_wise -> None
  in
  let seeds =
    match seed_tasks with
    | Some l -> Array.of_list (List.map fst l)
    | None -> [||]
  in
  let subtrees = Option.map (List.map snd) seed_tasks in
  let group_rev = ref [] in
  let roots_total =
    match subtrees with Some l -> List.length l | None -> -1
  in
  let stored = stored_entries ckpt ~db_size ~roots_total in
  let skip = List.length stored in
  let sv = saver_of ckpt ~db_size ~roots_total ~stored in
  (* merge the resumed prefix before mining the rest *)
  List.iter
    (fun (e : Checkpoint.entry) ->
      class_count := !class_count + e.Checkpoint.classes;
      oi_entries := !oi_entries + e.Checkpoint.oi_entries;
      oi_set_members := !oi_set_members + e.Checkpoint.oi_set_members;
      enumerate_seconds := !enumerate_seconds +. e.Checkpoint.enum_seconds;
      add_stats spec_stats e.Checkpoint.stats;
      Bitset.union_into ~dst:covered covered e.Checkpoint.covered;
      pattern_count := !pattern_count + List.length e.Checkpoint.patterns;
      collected := List.rev_append e.Checkpoint.patterns !collected;
      if Array.length seeds > 0 then
        group_rev :=
          (seeds.(e.Checkpoint.root), e.Checkpoint.patterns) :: !group_rev)
    stored;
  (* per-root scratch, committed only when the root completes *)
  let r_classes = ref 0 in
  let r_entries = ref 0 in
  let r_members = ref 0 in
  let r_enum = ref 0.0 in
  let r_patterns = ref [] in
  let r_stats = ref (Specialize.fresh_stats ()) in
  let r_covered = Bitset.create db_size in
  let commit_root root =
    class_count := !class_count + !r_classes;
    oi_entries := !oi_entries + !r_entries;
    oi_set_members := !oi_set_members + !r_members;
    enumerate_seconds := !enumerate_seconds +. !r_enum;
    add_stats spec_stats !r_stats;
    Bitset.union_into ~dst:covered covered r_covered;
    (match sink with
    | `Collect ->
      pattern_count := !pattern_count + List.length !r_patterns;
      collected := List.rev_append !r_patterns !collected;
      if Array.length seeds > 0 then
        group_rev := (seeds.(root), List.rev !r_patterns) :: !group_rev
    | `Stream _ -> ());
    (match sv with
    | Some sv ->
      saver_record sv
        {
          Checkpoint.root;
          classes = !r_classes;
          oi_entries = !r_entries;
          oi_set_members = !r_members;
          enum_seconds = !r_enum;
          stats = !r_stats;
          covered = Bitset.copy r_covered;
          patterns = List.rev !r_patterns;
        }
    | None -> ());
    r_classes := 0;
    r_entries := 0;
    r_members := 0;
    r_enum := 0.0;
    r_patterns := [];
    r_stats := Specialize.fresh_stats ();
    Bitset.clear r_covered
  in
  let process_class (class_pattern : Gspan.pattern) =
    if Timer.Budget.exceeded budget then raise Out_of_time_in_mining;
    incr r_classes;
    Bitset.union_into ~dst:r_covered r_covered
      class_pattern.Gspan.support_set;
    let oi =
      Occ_index.build ~taxonomy ~original:db ?keep_label class_pattern
    in
    let sz = Occ_index.size oi in
    r_entries := !r_entries + sz.Occ_index.entries;
    r_members := !r_members + sz.Occ_index.set_members;
    let t = Timer.start () in
    Fun.protect
      ~finally:(fun () -> r_enum := !r_enum +. Timer.elapsed_s t)
      (fun () ->
        Specialize.enumerate ~taxonomy ~min_support:min_support_count
          ~enhancements:config.enhancements ~stats:!r_stats ~budget oi
          (fun p ->
            match sink with
            | `Stream emit ->
              incr pattern_count;
              emit p
            | `Collect -> r_patterns := p :: !r_patterns))
  in
  (* under supervision a failing root yields a diagnostic and stops the
     run at the completed prefix, mirroring the pool path's join rule *)
  let guard root f =
    if not supervised then f ()
    else
      try f () with
      | (Out_of_time_in_mining | Specialize.Out_of_time) as e -> raise e
      | e ->
        let d =
          match Fault.diagnostic e with
          | Some d -> d
          | None ->
            Diagnostic.makef ~rule:"POOL001" Diagnostic.Error
              "root %d failed: %s" root (Printexc.to_string e)
        in
        diagnostics := d :: !diagnostics;
        raise Supervised_stop
  in
  let completed =
    try
      (match class_miner with
      | `Gspan ->
        List.iteri
          (fun root subtree ->
            if root >= skip then begin
              guard root (fun () ->
                  Fault.inject "taxogram.root";
                  subtree process_class);
              commit_root root
            end)
          (Option.get subtrees)
      | `Level_wise ->
        let next = ref 0 in
        Tsg_gspan.Level_miner.mine ?max_edges:config.max_edges
          ~min_support:min_support_count relabeled (fun cp ->
            let root = !next in
            incr next;
            if root >= skip then begin
              guard root (fun () ->
                  Fault.inject "taxogram.root";
                  process_class cp);
              commit_root root
            end));
      true
    with
    | Out_of_time_in_mining | Specialize.Out_of_time | Supervised_stop ->
      false
    | e when Option.is_some sv ->
      (* an unsupervised crash mid-run: snapshot the completed prefix so a
         rerun with the same checkpoint path picks up right here *)
      let bt = Printexc.get_raw_backtrace () in
      (match sv with Some s -> saver_flush s | None -> ());
      Printexc.raise_with_backtrace e bt
  in
  (match sv with Some s -> saver_finish s ~completed | None -> ());
  let mining_total = Timer.elapsed_s mining_timer in
  let mining_seconds = mining_total -. !enumerate_seconds in
  {
    patterns =
      (match sink with
      | `Collect -> Pattern.sort !collected
      | `Stream _ -> []);
    class_count = !class_count;
    pattern_count = !pattern_count;
    completed;
    diagnostics = List.rev !diagnostics;
    relabel_wall_seconds = relabel_wall;
    mining_wall_seconds = mining_seconds;
    mining_cpu_seconds = mining_seconds;
    enumerate_wall_seconds = !enumerate_seconds;
    enumerate_cpu_seconds = !enumerate_seconds;
    total_wall_seconds = Timer.elapsed_s total_timer;
    total_cpu_seconds = relabel_wall +. mining_total;
    spec_stats;
    oi_entries = !oi_entries;
    oi_set_members = !oi_set_members;
    covered_graph_count = Bitset.cardinal covered;
    root_groups =
      (match sink with
      | `Collect ->
        List.rev_map (fun (s, ps) -> (s, Pattern.sort ps)) !group_rev
      | `Stream _ -> []);
  }

(* --- pool path (domains > 1) ------------------------------------------ *)

(* Every pool task returns a list of these, one per root it processed;
   results merge at the join, where bitset unions and stat sums replace
   any hot-path locking. [t_root] ties an outcome to its root directly,
   so the completed-prefix rule survives root batching (a task id no
   longer maps 1:1 to a root). *)
type task_outcome = {
  t_root : int;
  t_ok : bool;  (* subtree explored / classes enumerated to completion *)
  t_classes : int;
  t_patterns : Pattern.t list;  (* newest first; spec tasks only *)
  t_stats : Specialize.stats option;
  t_mine_s : float;  (* step-2 CPU: subtree exploration + OI building *)
  t_enum_s : float;  (* step-3 CPU: specialization *)
  t_entries : int;
  t_members : int;
  t_covered : Bitset.t option;
}

let mining_outcome ~root ~ok ~classes ~mine_s ~entries ~members ~covered =
  {
    t_root = root;
    t_ok = ok;
    t_classes = classes;
    t_patterns = [];
    t_stats = None;
    t_mine_s = mine_s;
    t_enum_s = 0.0;
    t_entries = entries;
    t_members = members;
    t_covered = Some covered;
  }

(* stand-in for a quarantined supervised task at the join: not-ok, so the
   completed-prefix rule cuts the result before its first root *)
let failed_outcome ~root =
  {
    t_root = root;
    t_ok = false;
    t_classes = 0;
    t_patterns = [];
    t_stats = None;
    t_mine_s = 0.0;
    t_enum_s = 0.0;
    t_entries = 0;
    t_members = 0;
    t_covered = None;
  }

(* Checkpointing a pool run needs to know when a *root* is done — its
   mining work and every specialization class it forked — while tasks
   finish in whatever order the schedule produces. One accumulator per
   root gathers both sides under a lock; the completed-root prefix
   advances (and snapshots) as accumulators fill in. *)
type root_acc = {
  mutable a_mining_done : bool;
  mutable a_ok : bool;
  mutable a_forked : int;  (* spec classes the mining side handed off *)
  mutable a_spec_done : int;
  mutable a_classes : int;
  mutable a_oi_entries : int;
  mutable a_oi_members : int;
  mutable a_enum : float;
  a_stats : Specialize.stats;
  mutable a_covered : Bitset.t option;
  mutable a_patterns : Pattern.t list;
}

let fresh_acc () =
  {
    a_mining_done = false;
    a_ok = true;
    a_forked = 0;
    a_spec_done = 0;
    a_classes = 0;
    a_oi_entries = 0;
    a_oi_members = 0;
    a_enum = 0.0;
    a_stats = Specialize.fresh_stats ();
    a_covered = None;
    a_patterns = [];
  }

type tracker = {
  tk_lock : Mutex.t;
  tk_skip : int;  (* resumed roots; accs cover roots [skip..] *)
  tk_accs : root_acc array;
  tk_sv : saver;
  mutable tk_next : int;  (* next root awaiting completion *)
}

let with_tracker tk f =
  Mutex.lock tk.tk_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock tk.tk_lock) (fun () -> f ())

(* lock held: advance the done-prefix over filled accumulators; snapshot
   when it moved and the save interval elapsed *)
let tracker_advance tk =
  let advanced = ref false in
  let scanning = ref true in
  while !scanning do
    let idx = tk.tk_next - tk.tk_skip in
    if idx >= Array.length tk.tk_accs then scanning := false
    else begin
      let a = tk.tk_accs.(idx) in
      if a.a_mining_done && a.a_ok && a.a_spec_done = a.a_forked then begin
        tk.tk_sv.sv_prefix <-
          {
            Checkpoint.root = tk.tk_next;
            classes = a.a_classes;
            oi_entries = a.a_oi_entries;
            oi_set_members = a.a_oi_members;
            enum_seconds = a.a_enum;
            stats = a.a_stats;
            covered =
              (match a.a_covered with
              | Some c -> c
              | None -> Bitset.create tk.tk_sv.sv_db_size);
            patterns = a.a_patterns;
          }
          :: tk.tk_sv.sv_prefix;
        tk.tk_next <- tk.tk_next + 1;
        advanced := true
      end
      else scanning := false
    end
  done;
  if
    !advanced
    && Unix.gettimeofday () -. tk.tk_sv.sv_last
       >= tk.tk_sv.sv_ctx.ck_spec.every_s
  then saver_flush tk.tk_sv

let make_tracker ckpt ~db_size ~roots_total ~stored ~remaining =
  Option.map
    (fun c ->
      {
        tk_lock = Mutex.create ();
        tk_skip = List.length stored;
        tk_accs = Array.init remaining (fun _ -> fresh_acc ());
        tk_sv =
          {
            sv_ctx = c;
            sv_db_size = db_size;
            sv_roots_total = roots_total;
            sv_prefix = List.rev stored;
            sv_last = neg_infinity;
          };
        tk_next = List.length stored;
      })
    ckpt

(* consecutive chunks of at most [size]; preserves order *)
let chunk size l =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
      if n = size then go (List.rev cur :: acc) [ x ] 1 tl
      else go acc (x :: cur) (n + 1) tl
  in
  go [] [] 0 l

let run_pool ~config ~budget ~class_miner ~exec ~sink ~ckpt ~supervised
    ~root_batch ~spec_batch ~root_select taxonomy db =
  let total_timer = Timer.start () in
  let relabeled, relabel_wall =
    Timer.time (fun () -> Relabel.db taxonomy db)
  in
  (* hand every domain a read-only view of the interned labels: after the
     freeze, lookups touch only immutable structures, so the hot paths
     never contend on (or race with) the label table *)
  Label.freeze (Taxonomy.labels taxonomy);
  let min_support_count = Db.support_count_to_threshold db config.min_support in
  let keep_label =
    keep_label_of config taxonomy db ~min_support:min_support_count
  in
  let db_size = Db.size db in
  let spec_batch = match spec_batch with Some b -> max 1 b | None -> 4 in
  let emit_mutex = Mutex.create () in
  let stream_classes = Atomic.make 0 in
  let stream_emitted = Atomic.make 0 in
  let mining_timer = Timer.start () in
  (* step-3 wall-clock span across all domains, in µs since mining start *)
  let spec_first_us = Atomic.make max_int in
  let spec_last_us = Atomic.make min_int in
  let now_us () = int_of_float (Timer.elapsed_s mining_timer *. 1e6) in
  let atomic_min a v =
    let rec go () =
      let c = Atomic.get a in
      if v < c && not (Atomic.compare_and_set a c v) then go ()
    in
    go ()
  in
  let atomic_max a v =
    let rec go () =
      let c = Atomic.get a in
      if v > c && not (Atomic.compare_and_set a c v) then go ()
    in
    go ()
  in
  (* step-3 work for a batch of same-root occurrence indexes; forked from
     mining tasks once [spec_batch] classes accumulate, so steal traffic
     amortizes over a batch instead of paying per class *)
  let specialize_batch ~track ~root ois ctx =
    atomic_min spec_first_us (now_us ());
    let stats = Specialize.fresh_stats () in
    let acc = ref [] in
    let t = Timer.start () in
    let ok =
      List.fold_left
        (fun ok oi ->
          ok
          && (match
                Specialize.enumerate ~taxonomy ~min_support:min_support_count
                  ~enhancements:config.enhancements ~stats ~budget oi (fun p ->
                    Pool.check_deadline ctx;
                    match sink with
                    | `Collect -> acc := p :: !acc
                    | `Stream emit ->
                      Atomic.incr stream_emitted;
                      Mutex.lock emit_mutex;
                      Fun.protect
                        ~finally:(fun () -> Mutex.unlock emit_mutex)
                        (fun () -> emit p))
              with
             | () -> true
             | exception Specialize.Out_of_time -> false))
        true ois
    in
    let enum_s = Timer.elapsed_s t in
    atomic_max spec_last_us (now_us ());
    let o =
      {
        t_root = root;
        t_ok = ok;
        t_classes = 0;
        t_patterns = !acc;
        t_stats = Some stats;
        t_mine_s = 0.0;
        t_enum_s = enum_s;
        t_entries = 0;
        t_members = 0;
        t_covered = None;
      }
    in
    (match track with
    | Some tk ->
      with_tracker tk (fun () ->
          let a = tk.tk_accs.(root - tk.tk_skip) in
          a.a_spec_done <- a.a_spec_done + List.length ois;
          a.a_ok <- a.a_ok && ok;
          a.a_enum <- a.a_enum +. enum_s;
          add_stats a.a_stats stats;
          a.a_patterns <- List.rev_append !acc a.a_patterns;
          tracker_advance tk)
    | None -> ());
    [ o ]
  in
  (* step-2 work shared by both miners: project one mined class into its
     occurrence index on this domain *)
  let index_class ~covered ~entries ~members ctx (cp : Gspan.pattern) =
    Pool.check_deadline ctx;
    Bitset.union_into ~dst:covered covered cp.Gspan.support_set;
    let oi = Occ_index.build ~taxonomy ~original:db ?keep_label cp in
    let sz = Occ_index.size oi in
    entries := !entries + sz.Occ_index.entries;
    members := !members + sz.Occ_index.set_members;
    (match sink with
    | `Stream _ -> Atomic.incr stream_classes
    | `Collect -> ());
    oi
  in
  (* run the task list; supervision turns escaped failures into
     diagnostics, an unsupervised crash snapshots progress before
     propagating. [batch_start] maps a task's first id component back to
     the first root its batch covers, for quarantined tasks whose
     outcomes never materialized. *)
  let run_tasks ~track ~batch_start tasks =
    let fail_root id =
      match id with [] -> 0 | b :: _ -> batch_start.(b)
    in
    if supervised then begin
      let policy =
        match sink with
        (* a failed attempt may already have streamed patterns out; a
           retry would emit them twice *)
        | `Stream _ -> { Pool.default_policy with Pool.max_attempts = 1 }
        | `Collect -> Pool.default_policy
      in
      let res = Pool.Exec.run_supervised exec ~policy tasks in
      let diags =
        List.filter_map
          (fun (_, r) -> match r with Error d -> Some d | Ok _ -> None)
          res
      in
      let outs =
        List.concat_map
          (fun (id, r) ->
            match r with
            | Ok os -> os
            | Error _ -> [ failed_outcome ~root:(fail_root id) ])
          res
      in
      (outs, diags)
    end
    else
      match Pool.Exec.run exec tasks with
      | outs -> (List.concat_map snd outs, [])
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        (match track with
        | Some tk -> with_tracker tk (fun () -> saver_flush tk.tk_sv)
        | None -> ());
        Printexc.raise_with_backtrace e bt
  in
  let outcomes, diags, stored, track, seeds, mining_ok, mining_wall_s,
      mining_cpu_base =
    match class_miner with
    | `Gspan ->
      (* frequent 1-edge DFS-code roots are batched into tasks; each
         batch explores and indexes its subtrees on whichever domain runs
         (or steals) it, handing off specialization batches as it goes *)
      let seed_tasks =
        let l =
          Gspan.mine_seed_tasks ?max_edges:config.max_edges
            ~min_support:min_support_count relabeled
        in
        match root_select with
        | None -> l
        | Some keep -> List.filter (fun (seed, _) -> keep seed) l
      in
      let seeds = Array.of_list (List.map fst seed_tasks) in
      let subtrees = List.map snd seed_tasks in
      let roots_total = List.length subtrees in
      let stored = stored_entries ckpt ~db_size ~roots_total in
      let skip = List.length stored in
      let remaining = List.filteri (fun i _ -> i >= skip) subtrees in
      let n_remaining = List.length remaining in
      let track =
        make_tracker ckpt ~db_size ~roots_total ~stored ~remaining:n_remaining
      in
      let rb =
        match root_batch with
        | Some b -> max 1 b
        | None ->
          (* ~4 batches per domain: coarse enough to amortize steal
             traffic, fine enough to balance skewed subtrees *)
          max 1 (n_remaining / (Pool.Exec.domains exec * 4))
      in
      let process_root ctx (root, subtree) =
        Fault.inject "taxogram.root";
        let t0 = Timer.start () in
        let classes = ref 0 in
        let entries = ref 0 in
        let members = ref 0 in
        let forked = ref 0 in
        let covered = Bitset.create db_size in
        let pending = ref [] in
        let pending_n = ref 0 in
        let flush () =
          if !pending_n > 0 then begin
            let ois = List.rev !pending in
            forked := !forked + !pending_n;
            pending := [];
            pending_n := 0;
            Pool.fork ctx (specialize_batch ~track ~root ois)
          end
        in
        let ok =
          try
            subtree (fun cp ->
                if Timer.Budget.exceeded budget then
                  raise Out_of_time_in_mining;
                incr classes;
                let oi = index_class ~covered ~entries ~members ctx cp in
                pending := oi :: !pending;
                incr pending_n;
                if !pending_n >= spec_batch then flush ());
            flush ();
            true
          with Out_of_time_in_mining ->
            (* drop the unforked indexes: the root is cut either way *)
            pending := [];
            pending_n := 0;
            false
        in
        let mine_s = Timer.elapsed_s t0 in
        (match track with
        | Some tk ->
          with_tracker tk (fun () ->
              let a = tk.tk_accs.(root - tk.tk_skip) in
              a.a_mining_done <- true;
              a.a_ok <- a.a_ok && ok;
              a.a_forked <- !forked;
              a.a_classes <- !classes;
              a.a_oi_entries <- !entries;
              a.a_oi_members <- !members;
              a.a_covered <- Some covered;
              tracker_advance tk)
        | None -> ());
        mining_outcome ~root ~ok ~classes:!classes ~mine_s ~entries:!entries
          ~members:!members ~covered
      in
      let batches = chunk rb (List.mapi (fun p st -> (skip + p, st)) remaining) in
      let batch_start =
        Array.of_list (List.map (fun b -> fst (List.hd b)) batches)
      in
      let mining_left = Atomic.make (List.length batches) in
      let mining_wall = Atomic.make 0.0 in
      let batch_task batch ctx =
        let outs = List.map (process_root ctx) batch in
        if Atomic.fetch_and_add mining_left (-1) = 1 then
          Atomic.set mining_wall (Timer.elapsed_s mining_timer);
        outs
      in
      let tasks = List.map batch_task batches in
      let outcomes, diags = run_tasks ~track ~batch_start tasks in
      (outcomes, diags, stored, track, seeds, true, Atomic.get mining_wall,
       0.0)
    | `Level_wise ->
      (* the level-wise miner is inherently breadth-first and sequential;
         classes stream out of it into batched pool tasks (index + hand
         off specialization), so step 3 still fans out across the pool *)
      let classes = ref [] in
      let mining_ok =
        try
          Tsg_gspan.Level_miner.mine ?max_edges:config.max_edges
            ~min_support:min_support_count relabeled (fun cp ->
              if Timer.Budget.exceeded budget then raise Out_of_time_in_mining;
              classes := cp :: !classes);
          true
        with Out_of_time_in_mining -> false
      in
      let mining_seconds = Timer.elapsed_s mining_timer in
      let all_classes = List.rev !classes in
      (* the root count is only known after mining, and a budget can cut
         mining short, so snapshots record it as unknown *)
      let roots_total = -1 in
      let stored = stored_entries ckpt ~db_size ~roots_total in
      let skip = List.length stored in
      let remaining = List.filteri (fun i _ -> i >= skip) all_classes in
      let n_remaining = List.length remaining in
      let track =
        make_tracker ckpt ~db_size ~roots_total ~stored ~remaining:n_remaining
      in
      let rb =
        match root_batch with
        | Some b -> max 1 b
        | None -> max 1 (n_remaining / (Pool.Exec.domains exec * 4))
      in
      let process_class ctx (root, cp) =
        Fault.inject "taxogram.root";
        let t0 = Timer.start () in
        let entries = ref 0 in
        let members = ref 0 in
        let covered = Bitset.create db_size in
        let oi = index_class ~covered ~entries ~members ctx cp in
        Pool.fork ctx (specialize_batch ~track ~root [ oi ]);
        (match track with
        | Some tk ->
          with_tracker tk (fun () ->
              let a = tk.tk_accs.(root - tk.tk_skip) in
              a.a_mining_done <- true;
              a.a_forked <- 1;
              a.a_classes <- 1;
              a.a_oi_entries <- !entries;
              a.a_oi_members <- !members;
              a.a_covered <- Some covered;
              tracker_advance tk)
        | None -> ());
        mining_outcome ~root ~ok:true ~classes:1
          ~mine_s:(Timer.elapsed_s t0) ~entries:!entries ~members:!members
          ~covered
      in
      let batches = chunk rb (List.mapi (fun p cp -> (skip + p, cp)) remaining) in
      let batch_start =
        Array.of_list (List.map (fun b -> fst (List.hd b)) batches)
      in
      let batch_task batch ctx = List.map (process_class ctx) batch in
      let tasks = List.map batch_task batches in
      let outcomes, diags = run_tasks ~track ~batch_start tasks in
      (outcomes, diags, stored, track, [||], mining_ok, mining_seconds,
       mining_seconds)
  in
  (* the join: a root is complete when its mining work and every
     specialization class it handed off finished; only the maximal
     complete prefix of roots is reported, so what a budgeted [`Collect]
     run returns is a prefix of the canonical root sequence no matter how
     work was scheduled, batched, or stolen. *)
  let first_bad =
    List.fold_left
      (fun acc o -> if o.t_ok then acc else min acc o.t_root)
      max_int outcomes
  in
  let included = List.filter (fun o -> o.t_root < first_bad) outcomes in
  let completed = mining_ok && first_bad = max_int in
  (match track with
  | Some tk -> with_tracker tk (fun () -> saver_finish tk.tk_sv ~completed)
  | None -> ());
  let spec_stats = Specialize.fresh_stats () in
  let class_count = ref 0 in
  let oi_entries = ref 0 in
  let oi_set_members = ref 0 in
  let enumerate_cpu = ref 0.0 in
  let mining_cpu = ref mining_cpu_base in
  let covered = Bitset.create db_size in
  let patterns_rev = ref [] in
  (* the resumed prefix counts exactly as if mined in this run (its
     mining CPU was spent in the previous run, so it is not re-counted) *)
  List.iter
    (fun (e : Checkpoint.entry) ->
      class_count := !class_count + e.Checkpoint.classes;
      oi_entries := !oi_entries + e.Checkpoint.oi_entries;
      oi_set_members := !oi_set_members + e.Checkpoint.oi_set_members;
      enumerate_cpu := !enumerate_cpu +. e.Checkpoint.enum_seconds;
      add_stats spec_stats e.Checkpoint.stats;
      Bitset.union_into ~dst:covered covered e.Checkpoint.covered;
      patterns_rev := List.rev_append e.Checkpoint.patterns !patterns_rev)
    stored;
  List.iter
    (fun o ->
      class_count := !class_count + o.t_classes;
      oi_entries := !oi_entries + o.t_entries;
      oi_set_members := !oi_set_members + o.t_members;
      enumerate_cpu := !enumerate_cpu +. o.t_enum_s;
      mining_cpu := !mining_cpu +. o.t_mine_s;
      (match o.t_stats with Some s -> add_stats spec_stats s | None -> ());
      (match o.t_covered with
      | Some c -> Bitset.union_into ~dst:covered covered c
      | None -> ());
      patterns_rev := List.rev_append o.t_patterns !patterns_rev)
    included;
  let patterns =
    match sink with
    | `Collect -> Pattern.sort !patterns_rev
    | `Stream _ -> []
  in
  let root_groups =
    match sink with
    | `Stream _ -> []
    | `Collect ->
      if Array.length seeds = 0 then []
      else begin
        (* outcomes land per root in schedule order; regroup by root and
           restore determinism by sorting inside each group *)
        let arr = Array.make (Array.length seeds) [] in
        List.iter
          (fun (e : Checkpoint.entry) ->
            arr.(e.Checkpoint.root) <-
              List.rev_append (List.rev e.Checkpoint.patterns)
                arr.(e.Checkpoint.root))
          stored;
        List.iter
          (fun o -> arr.(o.t_root) <- List.rev_append o.t_patterns arr.(o.t_root))
          included;
        Array.to_list (Array.mapi (fun i ps -> (seeds.(i), Pattern.sort ps)) arr)
      end
  in
  let enumerate_wall =
    let f = Atomic.get spec_first_us and l = Atomic.get spec_last_us in
    if l > f then float_of_int (l - f) *. 1e-6 else 0.0
  in
  {
    patterns;
    class_count =
      (match sink with
      | `Collect -> !class_count
      | `Stream _ -> Atomic.get stream_classes);
    pattern_count =
      (match sink with
      | `Collect -> List.length patterns
      | `Stream _ -> Atomic.get stream_emitted);
    completed;
    diagnostics = diags;
    relabel_wall_seconds = relabel_wall;
    mining_wall_seconds = mining_wall_s;
    mining_cpu_seconds = !mining_cpu;
    enumerate_wall_seconds = enumerate_wall;
    enumerate_cpu_seconds = !enumerate_cpu;
    total_wall_seconds = Timer.elapsed_s total_timer;
    total_cpu_seconds = relabel_wall +. !mining_cpu +. !enumerate_cpu;
    spec_stats;
    oi_entries = !oi_entries;
    oi_set_members = !oi_set_members;
    covered_graph_count = Bitset.cardinal covered;
    root_groups;
  }

(* --- the one entry point ---------------------------------------------- *)

let run (spec : Spec.t) taxonomy db =
  let {
    Spec.config;
    budget;
    class_miner;
    exec;
    checkpoint;
    supervised;
    sink;
    root_batch;
    spec_batch;
    root_select;
  } =
    spec
  in
  (match root_select with
  | None -> ()
  | Some _ ->
    (match class_miner with
    | `Level_wise ->
      invalid_arg
        "Taxogram.run: root_select requires the `Gspan class miner (the \
         level-wise miner has no seed decomposition)"
    | `Gspan -> ());
    if Option.is_some checkpoint then
      invalid_arg
        "Taxogram.run: root_select cannot be combined with checkpointing \
         (snapshot prefixes index the full root sequence)");
  let ckpt =
    match checkpoint with
    | None -> None
    | Some cs ->
      (match sink with
      | `Stream _ ->
        invalid_arg "Taxogram.run: checkpointing requires the `Collect sink"
      | `Collect -> ());
      let fp =
        Checkpoint.fingerprint ~taxonomy ~db
          ~params:(fingerprint_params ~config ~class_miner)
      in
      let loaded =
        if Sys.file_exists cs.path then Some (Checkpoint.load cs.path)
        else None
      in
      Some { ck_spec = cs; ck_fp = fp; ck_loaded = loaded }
  in
  if Pool.Exec.domains exec = 1 then
    run_sequential ~config ~budget ~class_miner ~sink ~ckpt ~supervised
      ~root_select taxonomy db
  else
    run_pool ~config ~budget ~class_miner ~exec ~sink ~ckpt ~supervised
      ~root_batch ~spec_batch ~root_select taxonomy db
