(** Post-filters over mined pattern sets.

    Taxogram's output is already minimal along the
    generalization/specialization axis (no over-generalized patterns). These
    filters additionally condense it along the {e structural} axis, in the
    spirit of CloseGraph (Yan & Han, KDD'03) which the paper discusses as
    related work: a small pattern occurring in exactly the graphs of a
    bigger pattern carries no extra information.

    Both filters are quadratic in the pattern count with a generalized
    subgraph-isomorphism test per surviving comparison — intended for
    result-set sizes, not for use inside the mining loop. *)

val closed :
  Tsg_taxonomy.Taxonomy.t -> Pattern.t list -> Pattern.t list
(** Keep a pattern unless the set contains a strictly larger pattern with
    the {e same support set} in which it generalized-subgraph-embeds. *)

val maximal :
  Tsg_taxonomy.Taxonomy.t -> Pattern.t list -> Pattern.t list
(** Keep only patterns that generalized-subgraph-embed in no strictly larger
    pattern of the set (regardless of support). *)

val is_subsumed_by :
  Tsg_taxonomy.Taxonomy.t -> Pattern.t -> Pattern.t -> bool
(** [is_subsumed_by t p q]: is [q] strictly larger and does [p] embed in it
    (taxonomy-aware)? Exposed for tests. *)
