module Graph = Tsg_graph.Graph
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Arena = Tsg_util.Arena

type enhancements = {
  child_pruning : bool;
  label_prefilter : bool;
  start_preprocess : bool;
  collapse_equal_children : bool;
}

let all_on =
  {
    child_pruning = true;
    label_prefilter = true;
    start_preprocess = true;
    collapse_equal_children = true;
  }

let all_off =
  {
    child_pruning = false;
    label_prefilter = false;
    start_preprocess = false;
    collapse_equal_children = false;
  }

type stats = {
  mutable intersections : int;
  mutable visited : int;
  mutable emitted : int;
  mutable over_generalized : int;
}

let fresh_stats () =
  { intersections = 0; visited = 0; emitted = 0; over_generalized = 0 }

exception Out_of_time

let enumerate ~taxonomy ~min_support ~enhancements ?stats
    ?(budget = Tsg_util.Timer.Budget.unlimited) (oi : Occ_index.t) emit =
  let stats = Option.value ~default:(fresh_stats ()) stats in
  let positions = Graph.node_count oi.class_graph in
  let occ_set pos l = Occ_index.occurrence_set oi ~position:pos l in
  let raw_children pos l =
    List.filter (fun c -> occ_set pos c <> None) (Taxonomy.children taxonomy l)
  in
  (* (d): a label is collapsed when a child shares its occurrence set — any
     pattern through it is over-generalized, so enumeration skips it and
     exposes its children directly. *)
  let collapsed_memo : (int * int, bool) Hashtbl.t = Hashtbl.create 64 in
  let collapsed pos l =
    if not enhancements.collapse_equal_children then false
    else
      match Hashtbl.find_opt collapsed_memo (pos, l) with
      | Some b -> b
      | None ->
        let own = Option.get (occ_set pos l) in
        let b =
          List.exists
            (fun c -> Bitset.equal own (Option.get (occ_set pos c)))
            (raw_children pos l)
        in
        Hashtbl.add collapsed_memo (pos, l) b;
        b
  in
  let effective_children pos l =
    let seen = Hashtbl.create 8 in
    let out = ref [] in
    let rec go c =
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.add seen c ();
        if collapsed pos c then List.iter go (raw_children pos c)
        else out := c :: !out
      end
    in
    List.iter go (raw_children pos l);
    List.rev !out
  in
  (* (c): advance a start label along equal-occurrence-set children, but
     only when the child still dominates every covered label of the
     position (always true on tree taxonomies; the guard keeps DAGs
     complete). *)
  let advance_start pos l =
    if not enhancements.start_preprocess then l
    else begin
      let covered = Occ_index.covered_labels oi ~position:pos in
      let dominates c =
        let dset = Taxonomy.descendant_set taxonomy c in
        List.for_all (fun x -> Bitset.mem dset x) covered
      in
      let rec go l =
        let own = Option.get (occ_set pos l) in
        let next =
          List.find_opt
            (fun c ->
              Bitset.equal own (Option.get (occ_set pos c)) && dominates c)
            (raw_children pos l)
        in
        match next with Some c -> go c | None -> l
      in
      go l
    end
  in
  let visited : (int array, unit) Hashtbl.t = Hashtbl.create 256 in
  (* automorphic classes (e.g. an a-a edge) reach the same pattern through
     several label vectors; emit one representative per isomorphism class *)
  let emitted_keys : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let emit_pattern labels ocs =
    let graph = Graph.relabel oi.class_graph (fun v -> labels.(v)) in
    let key = Tsg_gspan.Min_code.canonical_key graph in
    if not (Hashtbl.mem emitted_keys key) then begin
      Hashtbl.add emitted_keys key ();
      stats.emitted <- stats.emitted + 1;
      let support_set = Occ_index.graph_set oi ocs in
      emit (Pattern.make ~db_size:oi.db_size graph support_set)
    end
  in
  (* visit: labels/ocs/support describe the current pattern; positions
     before [start] are frozen (the PNS), but the over-generalization check
     still spans all positions. *)
  let rec visit labels ocs support start =
    stats.visited <- stats.visited + 1;
    if
      stats.visited land 1023 = 0
      && Tsg_util.Timer.Budget.exceeded budget
    then raise Out_of_time;
    let over_generalized = ref false in
    (* One arena scratch per recursion level: every candidate's occurrence
       set is intersected into it in place and, on descent, handed to the
       recursive call directly — the child level borrows its own scratch,
       so ours is only overwritten once that call has returned. The
       steady-state allocation rate of this loop (the dominant one in
       Step 3) is zero. *)
    let scratch = Arena.acquire (Bitset.capacity ocs) in
    for pos = 0 to positions - 1 do
      List.iter
        (fun c ->
          let child_set = Option.get (occ_set pos c) in
          Bitset.inter_into ~dst:scratch ocs child_set;
          stats.intersections <- stats.intersections + 1;
          let support' = Occ_index.distinct_graph_count oi scratch in
          if support' = support then over_generalized := true;
          let descend =
            pos >= start && support' > 0
            && ((not enhancements.child_pruning) || support' >= min_support)
          in
          if descend then begin
            let labels' = Array.copy labels in
            labels'.(pos) <- c;
            if not (Hashtbl.mem visited labels') then begin
              Hashtbl.add visited labels' ();
              visit labels' scratch support' pos
            end
          end)
        (effective_children pos labels.(pos))
    done;
    Arena.release scratch;
    if !over_generalized then
      stats.over_generalized <- stats.over_generalized + 1
    else if support >= min_support then emit_pattern labels ocs
  in
  let start_labels =
    Array.init positions (fun pos ->
        advance_start pos (Graph.node_label oi.class_graph pos))
  in
  let start_ocs =
    Array.to_seq start_labels
    |> Seq.mapi (fun pos l -> Option.get (occ_set pos l))
    |> Seq.fold_left
         (fun acc set ->
           match acc with
           | None -> Some (Bitset.copy set)
           | Some a ->
             Bitset.inter_into ~dst:a a set;
             Some a)
         None
  in
  match start_ocs with
  | None -> () (* no positions: cannot happen, classes have >= 1 edge *)
  | Some ocs ->
    let support = Occ_index.distinct_graph_count oi ocs in
    Hashtbl.add visited (Array.copy start_labels) ();
    if support > 0 then visit start_labels ocs support 0
