module Bitset = Tsg_util.Bitset
module Gen_iso = Tsg_iso.Gen_iso

let strictly_larger (p : Pattern.t) (q : Pattern.t) =
  Pattern.edge_count q >= Pattern.edge_count p
  && Pattern.node_count q >= Pattern.node_count p
  && (Pattern.edge_count q > Pattern.edge_count p
     || Pattern.node_count q > Pattern.node_count p)

let is_subsumed_by taxonomy (p : Pattern.t) (q : Pattern.t) =
  strictly_larger p q
  && Gen_iso.subgraph_isomorphic taxonomy ~pattern:p.Pattern.graph
       ~target:q.Pattern.graph

let closed taxonomy patterns =
  List.filter
    (fun (p : Pattern.t) ->
      not
        (List.exists
           (fun (q : Pattern.t) ->
             Bitset.equal p.Pattern.support_set q.Pattern.support_set
             && is_subsumed_by taxonomy p q)
           patterns))
    patterns

let maximal taxonomy patterns =
  List.filter
    (fun (p : Pattern.t) ->
      not (List.exists (fun q -> is_subsumed_by taxonomy p q) patterns))
    patterns
