(** TAcGM: the bottom-up comparator (Inokuchi's generalized AcGM, ICDM'04,
    as reimplemented for the paper's evaluation).

    Breadth-first, level-wise mining directly in the generalized pattern
    space: level-k candidates are built by extending frequent (k-1)-edge
    patterns with one edge over {e all} frequent taxonomy labels, Apriori
    pruning discards candidates with an infrequent sub-pattern, and every
    surviving candidate's support is computed with its own generalized
    subgraph-isomorphism tests — a pattern and each of its generalizations
    are processed independently, so shared occurrences are re-tested per
    pattern (the cost Taxogram eliminates, paper Example 1.2).

    Like the original, the level-wise regime must hold every pattern of a
    level plus its embeddings at once; an explicit embedding budget
    reproduces the paper's out-of-memory failures. *)

type outcome = Completed | Out_of_memory | Timed_out

type result = {
  patterns : Pattern.t list;  (** minimal and complete iff [Completed] *)
  outcome : outcome;
  iso_tests : int;  (** generalized (sub)graph isomorphism tests performed *)
  embeddings_stored_peak : int;  (** max embeddings held across one level *)
  levels_completed : int;
  total_seconds : float;
}

val run :
  ?max_edges:int ->
  ?embedding_budget:int ->
  ?time_budget:Tsg_util.Timer.Budget.budget ->
  min_support:float ->
  Tsg_taxonomy.Taxonomy.t ->
  Tsg_graph.Db.t ->
  result
(** Defaults: unbounded size, an embedding budget of [10_000_000]
    (the 4 GB-heap stand-in), no time budget. On [Completed] the pattern
    set equals Taxogram's. *)
