module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Gen_iso = Tsg_iso.Gen_iso
module Min_code = Tsg_gspan.Min_code

let subgraph_of_edge_set g indices =
  let all = Graph.edges g in
  let chosen = List.map (fun i -> all.(i)) indices in
  let nodes =
    List.sort_uniq compare
      (List.concat_map (fun (u, v, _) -> [ u; v ]) chosen)
  in
  let remap = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.add remap v i) nodes;
  let labels =
    Array.of_list (List.map (fun v -> Graph.node_label g v) nodes)
  in
  let edges =
    List.map
      (fun (u, v, l) -> (Hashtbl.find remap u, Hashtbl.find remap v, l))
      chosen
  in
  Graph.build ~labels ~edges

let connected_subgraphs ~max_edges g =
  let all = Graph.edges g in
  let m = Array.length all in
  let touches nodes (u, v, _) = List.mem u nodes || List.mem v nodes in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  (* breadth-first growth of connected edge sets, deduplicated by their
     sorted index list *)
  let rec grow indices nodes =
    let key = List.sort compare indices in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := key :: !out;
      if List.length indices < max_edges then
        for i = 0 to m - 1 do
          if (not (List.mem i indices)) && touches nodes all.(i) then begin
            let u, v, _ = all.(i) in
            let nodes' =
              List.sort_uniq compare (u :: v :: nodes)
            in
            grow (i :: indices) nodes'
          end
        done
    end
  in
  if max_edges >= 1 then
    for i = 0 to m - 1 do
      let u, v, _ = all.(i) in
      grow [ i ] [ u; v ]
    done;
  List.rev_map (subgraph_of_edge_set g) !out

let generalizations taxonomy g =
  let n = Graph.node_count g in
  let choices =
    Array.init n (fun v -> Taxonomy.ancestors taxonomy (Graph.node_label g v))
  in
  let out = ref [] in
  let labels = Array.make n (-1) in
  let rec assign v =
    if v = n then out := Graph.relabel g (fun i -> labels.(i)) :: !out
    else
      List.iter
        (fun l ->
          labels.(v) <- l;
          assign (v + 1))
        choices.(v)
  in
  assign 0;
  !out

let mine ~max_edges ~min_support taxonomy db =
  let min_count = Db.support_count_to_threshold db min_support in
  let candidates = Hashtbl.create 1024 in
  Db.iteri
    (fun _ g ->
      List.iter
        (fun sub ->
          List.iter
            (fun cand ->
              let key = Min_code.canonical_key cand in
              if not (Hashtbl.mem candidates key) then
                Hashtbl.add candidates key cand)
            (generalizations taxonomy sub))
        (connected_subgraphs ~max_edges g))
    db;
  let frequent =
    Hashtbl.fold
      (fun key cand acc ->
        let set = Gen_iso.support_set taxonomy ~pattern:cand db in
        if Bitset.cardinal set >= min_count then
          (key, Pattern.make ~db_size:(Db.size db) cand set) :: acc
        else acc)
      candidates []
  in
  let over_generalized (key, (p : Pattern.t)) =
    List.exists
      (fun (key', (q : Pattern.t)) ->
        key <> key'
        && p.support_count = q.support_count
        && Pattern.node_count p = Pattern.node_count q
        && Pattern.edge_count p = Pattern.edge_count q
        && Gen_iso.graph_isomorphic taxonomy p.graph q.graph)
      frequent
  in
  frequent
  |> List.filter (fun entry -> not (over_generalized entry))
  |> List.map snd
  |> Pattern.sort
