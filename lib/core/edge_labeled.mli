(** Taxonomy-superimposed mining with an is-a hierarchy over {e edge} labels
    too.

    The paper's definitions omit edge labels "without loss of generality"
    (Section 2). This module makes that claim concrete: given a taxonomy for
    node labels and a second taxonomy for edge labels, every edge
    [u -(e)- v] is subdivided through an auxiliary {e edge node} labeled
    with [e]'s concept in a combined taxonomy. Generalized matching on the
    subdivided graphs is exactly generalized matching with taxonomies on
    both nodes and edges: an edge labeled [transport] in a pattern matches a
    database edge labeled [carrier-mediated transport], and so on.

    Patterns decode back to edge-labeled graphs; subdivision artifacts
    (patterns with dangling edge nodes) are dropped, preserving minimality
    and completeness over proper edge-labeled patterns by the same argument
    as the directed mode ({!Directed}). *)

type env

val prepare :
  node_taxonomy:Tsg_taxonomy.Taxonomy.t ->
  edge_taxonomy:Tsg_taxonomy.Taxonomy.t ->
  env
(** Build the combined taxonomy. Node- and edge-label names must be
    disjoint; @raise Invalid_argument otherwise. *)

val taxonomy : env -> Tsg_taxonomy.Taxonomy.t
(** The combined taxonomy. *)

val node_concept : env -> Tsg_graph.Label.id -> Tsg_graph.Label.id
(** Combined-taxonomy id of a node-taxonomy label. *)

val edge_concept : env -> Tsg_graph.Label.id -> Tsg_graph.Label.id
(** Combined-taxonomy id of an edge-taxonomy label. *)

val node_concept_back : env -> Tsg_graph.Label.id -> Tsg_graph.Label.id option
(** Node-taxonomy id of a combined label, when it is one. *)

val edge_concept_back : env -> Tsg_graph.Label.id -> Tsg_graph.Label.id option

val encode : env -> Tsg_graph.Graph.t -> Tsg_graph.Graph.t
(** Subdivision image of a graph whose node labels are node-taxonomy ids and
    edge labels are edge-taxonomy ids. *)

val decode : env -> Tsg_graph.Graph.t -> Tsg_graph.Graph.t option
(** Back to an edge-labeled graph ([None] on subdivision artifacts). *)

type pattern = {
  graph : Tsg_graph.Graph.t;
      (** node labels: node-taxonomy ids; edge labels: edge-taxonomy ids *)
  support_count : int;
  support : float;
  support_set : Tsg_util.Bitset.t;
}

val mine :
  ?min_support:float ->
  ?max_edges:int ->
  ?enhancements:Specialize.enhancements ->
  env ->
  Tsg_graph.Graph.t list ->
  pattern list
(** Mine with generalization on both node and edge labels. Minimal and
    complete over connected edge-labeled patterns with at least one edge. *)
