module Graph = Tsg_graph.Graph
module Digraph = Tsg_graph.Digraph
module Label = Tsg_graph.Label
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset

type env = { taxonomy : Taxonomy.t; arc_label : Label.id }

let arc_concept_name = "<arc>"

let prepare t =
  if Label.mem (Taxonomy.labels t) arc_concept_name then
    invalid_arg
      ("Directed.prepare: taxonomy already defines " ^ arc_concept_name);
  (* rebuild from the original (non-artificial) concepts plus the arc
     concept, so ids stay dense and closures are recomputed; artificial
     roots are re-synthesized by the build *)
  let originals =
    List.filter
      (fun l -> not (Taxonomy.is_artificial t l))
      (List.init (Taxonomy.label_count t) (fun i -> i))
  in
  let names = List.map (Taxonomy.name t) originals @ [ arc_concept_name ] in
  let is_a =
    List.concat_map
      (fun l ->
        List.filter_map
          (fun p ->
            if Taxonomy.is_artificial t p then None
            else Some (Taxonomy.name t l, Taxonomy.name t p))
          (Taxonomy.parents t l))
      originals
  in
  let extended = Taxonomy.build ~names ~is_a in
  { taxonomy = extended; arc_label = Taxonomy.id_of_name extended arc_concept_name }

let taxonomy env = env.taxonomy

let arc_label env = env.arc_label

let encode env dg =
  let n = Digraph.node_count dg in
  let arcs = Digraph.arcs dg in
  let labels =
    Array.init
      (n + Array.length arcs)
      (fun i -> if i < n then Digraph.node_label dg i else env.arc_label)
  in
  let edges =
    Array.to_list
      (Array.mapi
         (fun k (u, v, e) -> [ (u, n + k, 2 * e); (n + k, v, (2 * e) + 1) ])
         arcs)
    |> List.concat
  in
  Graph.build ~labels ~edges

let decode env g =
  let n = Graph.node_count g in
  let is_arc v = Graph.node_label g v = env.arc_label in
  let real = ref [] in
  for v = n - 1 downto 0 do
    if not (is_arc v) then real := v :: !real
  done;
  let remap = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.add remap v i) !real;
  let labels =
    Array.of_list (List.map (fun v -> Graph.node_label g v) !real)
  in
  let ok = ref true in
  let arcs = ref [] in
  for v = 0 to n - 1 do
    if is_arc v then begin
      match Graph.neighbors g v with
      | [| (x, lx); (y, ly) |] ->
        if is_arc x || is_arc y then ok := false
        else begin
          let src, dst, e_src, e_dst =
            if lx mod 2 = 0 then (x, y, lx, ly) else (y, x, ly, lx)
          in
          if e_src mod 2 = 0 && e_dst = e_src + 1 then
            arcs :=
              (Hashtbl.find remap src, Hashtbl.find remap dst, e_src / 2)
              :: !arcs
          else ok := false
        end
      | _ -> ok := false
    end
    else if
      Array.exists (fun (w, _) -> not (is_arc w)) (Graph.neighbors g v)
    then ok := false
  done;
  if (not !ok) || !arcs = [] then None
  else
    match Digraph.build ~labels ~arcs:!arcs with
    | dg -> Some dg
    | exception Invalid_argument _ -> None

let canonical_key env dg =
  Tsg_gspan.Min_code.canonical_key (encode env dg)

type pattern = {
  digraph : Digraph.t;
  support_count : int;
  support : float;
  support_set : Bitset.t;
}

let mine ?(min_support = 0.2) ?max_arcs
    ?(enhancements = Specialize.all_on) env digraphs =
  let db = Db.of_list (List.map (encode env) digraphs) in
  let config =
    {
      Taxogram.min_support;
      max_edges = Option.map (fun a -> 2 * a) max_arcs;
      enhancements;
    }
  in
  let out = ref [] in
  let spec =
    Taxogram.Spec.stream ~config ~domains:1 (fun (p : Pattern.t) ->
        match decode env p.Pattern.graph with
        | Some dg ->
          out :=
            {
              digraph = dg;
              support_count = p.Pattern.support_count;
              support = p.Pattern.support;
              support_set = p.Pattern.support_set;
            }
            :: !out
        | None -> ())
  in
  let _ = Taxogram.run spec env.taxonomy db in
  List.rev !out

let pp_pattern ~names ppf p =
  let g = p.digraph in
  Format.fprintf ppf "@[<h>pattern[sup=%d (%.2f)]" p.support_count p.support;
  for v = 0 to Digraph.node_count g - 1 do
    Format.fprintf ppf " %d:%s" v (Label.name names (Digraph.node_label g v))
  done;
  Array.iter
    (fun (u, v, l) ->
      if l = 0 then Format.fprintf ppf " (%d->%d)" u v
      else Format.fprintf ppf " (%d->%d/%d)" u v l)
    (Digraph.arcs g);
  Format.fprintf ppf "@]"
