module Graph = Tsg_graph.Graph
module Label = Tsg_graph.Label
module Bitset = Tsg_util.Bitset

(* Label names are arbitrary strings, but the format is space-split and
   line-oriented: escape whitespace and '%' as %XX, and spell the empty
   name as a bare "%" so every name serializes to a non-empty token. *)
let escape_name name =
  if name = "" then "%"
  else if
    String.for_all
      (fun c -> not (c = '%' || c = ' ' || c = '\t' || c = '\n' || c = '\r'))
      name
  then name
  else begin
    let buf = Buffer.create (String.length name + 8) in
    String.iter
      (fun c ->
        match c with
        | '%' | ' ' | '\t' | '\n' | '\r' ->
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        | c -> Buffer.add_char buf c)
      name;
    Buffer.contents buf
  end

let unescape_name token =
  if token = "%" then ""
  else if not (String.contains token '%') then token
  else begin
    let buf = Buffer.create (String.length token) in
    let n = String.length token in
    let i = ref 0 in
    while !i < n do
      (match token.[!i] with
      | '%' ->
        if !i + 2 >= n then invalid_arg "truncated %XX escape";
        (match int_of_string_opt ("0x" ^ String.sub token (!i + 1) 2) with
        | Some code -> Buffer.add_char buf (Char.chr code)
        | None -> invalid_arg "bad %XX escape");
        i := !i + 2
      | c -> Buffer.add_char buf c);
      incr i
    done;
    Buffer.contents buf
  end

(* node ids in minimum-DFS-code order, so isomorphic patterns serialize
   identically; disconnected or single-node graphs are left as built *)
(* Canonical node numbering must depend only on serialized content, not on
   the caller's edge-label interning order (the minimum DFS code compares
   edge-label ids): rank this pattern's edge labels by *name*, renumber
   under the ranks, then map the ranks back. Writer and checker both go
   through here, so saved artifacts and [PAT002] agree. *)
let canonical_form ~edge_labels g =
  if Graph.node_count g <= 1 || not (Graph.is_connected g) then g
  else begin
    let remap f gg =
      Graph.build
        ~labels:(Graph.node_labels gg)
        ~edges:
          (Array.to_list
             (Array.map (fun (u, v, l) -> (u, v, f l)) (Graph.edges gg)))
    in
    let ids =
      List.sort_uniq Stdlib.compare
        (Array.to_list (Array.map (fun (_, _, l) -> l) (Graph.edges g)))
    in
    let by_name =
      List.sort
        (fun a b ->
          String.compare (Label.name edge_labels a) (Label.name edge_labels b))
        ids
    in
    let rank = Hashtbl.create 8 in
    List.iteri (fun i id -> Hashtbl.add rank id i) by_name;
    let unrank = Array.of_list by_name in
    let ranked = remap (Hashtbl.find rank) g in
    let canon = Tsg_gspan.Dfs_code.to_graph (Tsg_gspan.Min_code.minimum ranked) in
    remap (fun r -> unrank.(r)) canon
  end

let to_string ~node_labels ~edge_labels ~db_size patterns =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun index (p : Pattern.t) ->
      Buffer.add_string buf
        (Printf.sprintf "p # %d support %d/%d\n" index p.Pattern.support_count
           db_size);
      let g = canonical_form ~edge_labels p.Pattern.graph in
      for v = 0 to Graph.node_count g - 1 do
        Buffer.add_string buf
          (Printf.sprintf "v %d %s\n" v
             (escape_name (Label.name node_labels (Graph.node_label g v))))
      done;
      Array.iter
        (fun (u, v, l) ->
          Buffer.add_string buf
            (Printf.sprintf "e %d %d %s\n" u v
               (escape_name (Label.name edge_labels l))))
        (Graph.edges g))
    patterns;
  Buffer.contents buf

let save path ~node_labels ~edge_labels ~db_size patterns =
  Tsg_util.Fault.inject "pattern_io.save";
  Tsg_util.Safe_io.write_atomic path
    (to_string ~node_labels ~edge_labels ~db_size patterns)

exception Parse_error of Tsg_util.Diagnostic.t

type located = {
  pattern : Pattern.t;
  header_line : int;
  recorded_db_size : int;
}

type partial = {
  support : int;
  header_line : int;
  mutable labels : (int * Label.id) list;
  mutable edges : (int * int * Label.id) list;
}

let parse_located ?file ~node_labels ~edge_labels text =
  let fail line msg =
    raise
      (Parse_error
         (Tsg_util.Diagnostic.make ?file ~line ~rule:"PAT009"
            Tsg_util.Diagnostic.Error msg))
  in
  let unescape lineno token =
    try unescape_name token
    with Invalid_argument msg -> fail lineno (msg ^ " in " ^ token)
  in
  let patterns = ref [] in
  let db_size = ref 0 in
  let current = ref None in
  let lineno = ref 0 in
  let close_current () =
    match !current with
    | None -> ()
    | Some p ->
      let count =
        List.fold_left (fun acc (v, _) -> max acc (v + 1)) 0 p.labels
      in
      let labels = Array.make count (-1) in
      List.iter
        (fun (v, l) ->
          if v < 0 || labels.(v) <> -1 then
            fail !lineno (Printf.sprintf "bad or duplicate node %d" v)
          else labels.(v) <- l)
        p.labels;
      Array.iteri
        (fun v l ->
          if l = -1 then fail !lineno (Printf.sprintf "missing node %d" v))
        labels;
      let graph =
        try Graph.build ~labels ~edges:p.edges
        with Invalid_argument msg -> fail !lineno msg
      in
      (* the support set's membership is not recorded; restore cardinality *)
      let set = Bitset.create (max !db_size p.support) in
      for i = 0 to p.support - 1 do
        Bitset.set set i
      done;
      patterns :=
        {
          pattern = Pattern.make ~db_size:!db_size graph set;
          header_line = p.header_line;
          recorded_db_size = !db_size;
        }
        :: !patterns;
      current := None
  in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         incr lineno;
         let line = String.trim raw in
         if line = "" || line.[0] = '#' then ()
         else
           match String.split_on_char ' ' line with
           | [ "p"; "#"; _; "support"; frac ] -> (
             close_current ();
             match String.split_on_char '/' frac with
             | [ num; den ] -> (
               match (int_of_string_opt num, int_of_string_opt den) with
               | Some support, Some size when support >= 0 && size >= support ->
                 db_size := size;
                 current :=
                   Some { support; header_line = !lineno; labels = []; edges = [] }
               | _ -> fail !lineno ("bad support " ^ frac))
             | _ -> fail !lineno ("bad support " ^ frac))
           | [ "v"; v; name ] -> (
             match (!current, int_of_string_opt v) with
             | None, _ -> fail !lineno "'v' before any 'p' header"
             | _, None -> fail !lineno ("bad node index " ^ v)
             | Some p, Some v ->
               p.labels <- (v, Label.intern node_labels (unescape !lineno name))
                           :: p.labels)
           | [ "e"; u; v; name ] -> (
             match (!current, int_of_string_opt u, int_of_string_opt v) with
             | None, _, _ -> fail !lineno "'e' before any 'p' header"
             | _, None, _ | _, _, None -> fail !lineno "bad edge endpoints"
             | Some p, Some u, Some v ->
               p.edges <- (u, v, Label.intern edge_labels (unescape !lineno name))
                          :: p.edges)
           | _ -> fail !lineno ("unrecognized line: " ^ line));
  close_current ();
  (List.rev !patterns, !db_size)

let parse ?file ~node_labels ~edge_labels text =
  let located, db_size = parse_located ?file ~node_labels ~edge_labels text in
  (List.map (fun l -> l.pattern) located, db_size)

let load ~node_labels ~edge_labels path =
  Tsg_util.Fault.inject "pattern_io.load";
  parse ~file:path ~node_labels ~edge_labels (Tsg_util.Safe_io.read_file path)
