module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Label = Tsg_graph.Label
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Gspan = Tsg_gspan.Gspan

type t = {
  class_graph : Graph.t;
  class_support_set : Bitset.t;
  occ_count : int;
  occ_gid : int array;
  entries : (Label.id, Bitset.t) Hashtbl.t array;
  all_occs : Bitset.t;
  db_size : int;
  mutable stamp : int;
  seen : int array; (* per graph id: last stamp that touched it *)
}

let build ~taxonomy ~original ?(keep_label = fun _ -> true)
    (p : Gspan.pattern) =
  let positions = Graph.node_count p.graph in
  let embeddings = Array.of_list p.embeddings in
  let occ_count = Array.length embeddings in
  let occ_gid = Array.map (fun e -> e.Gspan.graph_id) embeddings in
  let entries = Array.init positions (fun _ -> Hashtbl.create 16) in
  Array.iteri
    (fun occ (e : Gspan.embedding) ->
      let g = Db.get original e.graph_id in
      for pos = 0 to positions - 1 do
        let original_label = Graph.node_label g e.map.(pos) in
        let class_label = Graph.node_label p.graph pos in
        let table = entries.(pos) in
        Bitset.iter
          (fun anc ->
            if anc = class_label || keep_label anc then begin
              let set =
                match Hashtbl.find_opt table anc with
                | Some s -> s
                | None ->
                  let s = Bitset.create occ_count in
                  Hashtbl.add table anc s;
                  s
              in
              Bitset.set set occ
            end)
          (Taxonomy.ancestor_set taxonomy original_label)
      done)
    embeddings;
  let all_occs = Bitset.full occ_count in
  {
    class_graph = p.graph;
    class_support_set = Bitset.copy p.support_set;
    occ_count;
    occ_gid;
    entries;
    all_occs;
    db_size = Db.size original;
    stamp = 0;
    seen = Array.make (Db.size original) (-1);
  }

let occurrence_set t ~position label =
  Hashtbl.find_opt t.entries.(position) label

let covered_labels t ~position =
  Hashtbl.fold (fun l _ acc -> l :: acc) t.entries.(position) []
  |> List.sort compare

let distinct_graph_count t occs =
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  let count = ref 0 in
  Bitset.iter
    (fun occ ->
      let gid = t.occ_gid.(occ) in
      if t.seen.(gid) <> stamp then begin
        t.seen.(gid) <- stamp;
        incr count
      end)
    occs;
  !count

let graph_set t occs =
  let set = Bitset.create t.db_size in
  Bitset.iter (fun occ -> Bitset.set set t.occ_gid.(occ)) occs;
  set

type size = { positions : int; entries : int; set_members : int }

let size (t : t) =
  let entries = ref 0 and set_members = ref 0 in
  Array.iter
    (fun table ->
      entries := !entries + Hashtbl.length table;
      Hashtbl.iter (fun _ s -> set_members := !set_members + Bitset.cardinal s)
        table)
    t.entries;
  {
    positions = Array.length t.entries;
    entries = !entries;
    set_members = !set_members;
  }
