module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Label = Tsg_graph.Label
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Gspan = Tsg_gspan.Gspan

type t = {
  class_graph : Graph.t;
  class_support_set : Bitset.t;
  occ_count : int;
  occ_gid : int array;
  entries : (Label.id, Bitset.t) Hashtbl.t array;
  all_occs : Bitset.t;
  db_size : int;
  mutable stamp : int;
  seen : int array; (* per graph id: last stamp that touched it *)
}

let self_check_impl ~taxonomy ~original ~keep_label t =
  let issues = ref [] in
  let add fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
  let lname l = Taxonomy.name taxonomy l in
  let positions = Graph.node_count t.class_graph in
  (* brute-force generalized-iso embeddings over the original database *)
  let maps = ref [] in
  let bf_count = ref 0 in
  Db.iteri
    (fun gid g ->
      Tsg_iso.Gen_iso.iter_embeddings taxonomy ~pattern:t.class_graph ~target:g
        (fun map ->
          incr bf_count;
          maps := (gid, Array.copy map) :: !maps))
    original;
  let maps = List.rev !maps in
  if !bf_count <> t.occ_count then
    add "index holds %d occurrences but brute force finds %d embeddings"
      t.occ_count !bf_count;
  let db_n = Db.size original in
  let bf_per_gid = Array.make db_n 0 in
  List.iter (fun (gid, _) -> bf_per_gid.(gid) <- bf_per_gid.(gid) + 1) maps;
  let idx_per_gid = Array.make db_n 0 in
  Array.iter (fun gid -> idx_per_gid.(gid) <- idx_per_gid.(gid) + 1) t.occ_gid;
  for gid = 0 to db_n - 1 do
    if bf_per_gid.(gid) <> idx_per_gid.(gid) then
      add "graph %d: %d occurrences indexed but %d brute-force embeddings" gid
        idx_per_gid.(gid) bf_per_gid.(gid)
  done;
  let support = Bitset.create db_n in
  List.iter (fun (gid, _) -> Bitset.set support gid) maps;
  if not (Bitset.equal support t.class_support_set) then
    add "class support set disagrees with brute-force support set";
  if Bitset.cardinal t.all_occs <> t.occ_count then
    add "all_occs holds %d members for %d occurrences"
      (Bitset.cardinal t.all_occs) t.occ_count;
  for pos = 0 to positions - 1 do
    let class_label = Graph.node_label t.class_graph pos in
    (* expected OIE cardinalities: one count per covered ancestor label *)
    let expected = Hashtbl.create 16 in
    List.iter
      (fun (gid, map) ->
        let g = Db.get original gid in
        let original_label = Graph.node_label g map.(pos) in
        Bitset.iter
          (fun anc ->
            if anc = class_label || keep_label anc then
              Hashtbl.replace expected anc
                (1 + Option.value ~default:0 (Hashtbl.find_opt expected anc)))
          (Taxonomy.ancestor_set taxonomy original_label))
      maps;
    let table = t.entries.(pos) in
    Hashtbl.iter
      (fun l set ->
        match Hashtbl.find_opt expected l with
        | None ->
          add "position %d: label %s indexed but covers no embedding" pos
            (lname l)
        | Some n ->
          if n <> Bitset.cardinal set then
            add "position %d, label %s: OcS cardinality %d but %d embeddings"
              pos (lname l) (Bitset.cardinal set) n)
      table;
    Hashtbl.iter
      (fun l n ->
        if not (Hashtbl.mem table l) then
          add "position %d: label %s covered by %d embeddings missing from OIE"
            pos (lname l) n)
      expected;
    (* a specialization's occurrence set is contained in its ancestors' *)
    Hashtbl.iter
      (fun l set ->
        Hashtbl.iter
          (fun l' set' ->
            if l <> l'
               && Taxonomy.is_ancestor taxonomy ~anc:l' l
               && not (Bitset.subset set set')
            then
              add "position %d: OcS(%s) not within OcS(ancestor %s)" pos
                (lname l) (lname l'))
          table)
      table
  done;
  List.rev !issues

let self_check ~taxonomy ~original ?(keep_label = fun _ -> true) t =
  self_check_impl ~taxonomy ~original ~keep_label t

(* keep the debug-mode brute-force cross-check affordable *)
let debug_check_max_occs = 2_000

let debug_check_max_db = 500

let build ~taxonomy ~original ?(keep_label = fun _ -> true)
    (p : Gspan.pattern) =
  Tsg_util.Fault.inject "occ_index.build";
  let positions = Graph.node_count p.graph in
  let embeddings = Array.of_list p.embeddings in
  let occ_count = Array.length embeddings in
  let occ_gid = Array.map (fun e -> e.Gspan.graph_id) embeddings in
  let entries = Array.init positions (fun _ -> Hashtbl.create 16) in
  Array.iteri
    (fun occ (e : Gspan.embedding) ->
      let g = Db.get original e.graph_id in
      for pos = 0 to positions - 1 do
        let original_label = Graph.node_label g e.map.(pos) in
        let class_label = Graph.node_label p.graph pos in
        let table = entries.(pos) in
        Bitset.iter
          (fun anc ->
            if anc = class_label || keep_label anc then begin
              let set =
                match Hashtbl.find_opt table anc with
                | Some s -> s
                | None ->
                  let s = Bitset.create occ_count in
                  Hashtbl.add table anc s;
                  s
              in
              Bitset.set set occ
            end)
          (Taxonomy.ancestor_set taxonomy original_label)
      done)
    embeddings;
  let all_occs = Bitset.full occ_count in
  let t =
    {
      class_graph = p.graph;
      class_support_set = Bitset.copy p.support_set;
      occ_count;
      occ_gid;
      entries;
      all_occs;
      db_size = Db.size original;
      stamp = 0;
      seen = Array.make (Db.size original) (-1);
    }
  in
  if
    Tsg_util.Debug.checks_enabled ()
    && occ_count <= debug_check_max_occs
    && Db.size original <= debug_check_max_db
  then begin
    match self_check_impl ~taxonomy ~original ~keep_label t with
    | [] -> ()
    | issues ->
      failwith ("Occ_index.self_check: " ^ String.concat "; " issues)
  end;
  t

let occurrence_set t ~position label =
  Hashtbl.find_opt t.entries.(position) label

let covered_labels t ~position =
  Hashtbl.fold (fun l _ acc -> l :: acc) t.entries.(position) []
  |> List.sort compare

let distinct_graph_count t occs =
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  let count = ref 0 in
  Bitset.iter
    (fun occ ->
      let gid = t.occ_gid.(occ) in
      if t.seen.(gid) <> stamp then begin
        t.seen.(gid) <- stamp;
        incr count
      end)
    occs;
  !count

let graph_set t occs =
  let set = Bitset.create t.db_size in
  Bitset.iter (fun occ -> Bitset.set set t.occ_gid.(occ)) occs;
  set

type size = { positions : int; entries : int; set_members : int }

let size (t : t) =
  let entries = ref 0 and set_members = ref 0 in
  Array.iter
    (fun table ->
      entries := !entries + Hashtbl.length table;
      Hashtbl.iter (fun _ s -> set_members := !set_members + Bitset.cardinal s)
        table)
    t.entries;
  {
    positions = Array.length t.entries;
    entries = !entries;
    set_members = !set_members;
  }
