module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Timer = Tsg_util.Timer
module Gen_iso = Tsg_iso.Gen_iso
module Min_code = Tsg_gspan.Min_code

type outcome = Completed | Out_of_memory | Timed_out

type result = {
  patterns : Pattern.t list;
  outcome : outcome;
  iso_tests : int;
  embeddings_stored_peak : int;
  levels_completed : int;
  total_seconds : float;
}

exception Abort of outcome

type level_entry = {
  key : string;
  graph : Graph.t;
  support_set : Bitset.t;
}

let frequent_edge_labels db ~min_count =
  let counts = Hashtbl.create 32 in
  Db.iteri
    (fun _ g ->
      List.iter
        (fun l ->
          Hashtbl.replace counts l
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
        (List.sort_uniq compare
           (Array.to_list (Array.map (fun (_, _, l) -> l) (Graph.edges g)))))
    db;
  Hashtbl.fold (fun l c acc -> if c >= min_count then l :: acc else acc)
    counts []
  |> List.sort compare

(* level-1 candidates straight from the data: every generalization of every
   database edge over the frequent label set *)
let seed_candidates taxonomy db keep_label =
  let seen = Hashtbl.create 256 in
  Db.iteri
    (fun _ g ->
      Array.iter
        (fun (u, v, le) ->
          let lu = Graph.node_label g u and lv = Graph.node_label g v in
          Bitset.iter
            (fun a ->
              if keep_label a then
                Bitset.iter
                  (fun b ->
                    if keep_label b then begin
                      let a, b = if a <= b then (a, b) else (b, a) in
                      let cand =
                        Graph.build ~labels:[| a; b |] ~edges:[ (0, 1, le) ]
                      in
                      let key = Min_code.canonical_key cand in
                      if not (Hashtbl.mem seen key) then
                        Hashtbl.add seen key cand
                    end)
                  (Taxonomy.ancestor_set taxonomy lv))
            (Taxonomy.ancestor_set taxonomy lu))
        (Graph.edges g))
    db;
  Hashtbl.fold (fun key g acc -> (key, g) :: acc) seen []

(* one-edge extensions of a frequent pattern: a new labeled node hung off
   any existing node, or a closing edge between non-adjacent nodes *)
let extensions graph ~node_labels ~edge_labels =
  let n = Graph.node_count graph in
  let labels = Graph.node_labels graph in
  let base_edges = Array.to_list (Graph.edges graph) in
  let out = ref [] in
  List.iter
    (fun le ->
      for u = 0 to n - 1 do
        List.iter
          (fun a ->
            let cand =
              Graph.build
                ~labels:(Array.append labels [| a |])
                ~edges:((u, n, le) :: base_edges)
            in
            out := cand :: !out)
          node_labels;
        for v = u + 1 to n - 1 do
          if not (Graph.has_edge graph u v) then begin
            let cand =
              Graph.build ~labels ~edges:((u, v, le) :: base_edges)
            in
            out := cand :: !out
          end
        done
      done)
    edge_labels;
  !out

(* every connected one-edge-removed subgraph, for Apriori pruning *)
let connected_subpatterns graph =
  let edges = Graph.edges graph in
  let m = Array.length edges in
  let out = ref [] in
  for drop = 0 to m - 1 do
    let kept = ref [] in
    Array.iteri (fun i e -> if i <> drop then kept := e :: !kept) edges;
    let touched = Array.make (Graph.node_count graph) false in
    List.iter
      (fun (a, b, _) ->
        touched.(a) <- true;
        touched.(b) <- true)
      !kept;
    (* drop endpoints that became isolated *)
    let nodes = ref [] in
    Array.iteri (fun i t -> if t then nodes := i :: !nodes) touched;
    let nodes = List.rev !nodes in
    if nodes <> [] then begin
      let remap = Hashtbl.create 8 in
      List.iteri (fun idx node -> Hashtbl.add remap node idx) nodes;
      let labels =
        Array.of_list (List.map (fun node -> Graph.node_label graph node) nodes)
      in
      let sub_edges =
        List.map
          (fun (a, b, l) -> (Hashtbl.find remap a, Hashtbl.find remap b, l))
          !kept
      in
      let sub = Graph.build ~labels ~edges:sub_edges in
      if Graph.is_connected sub then out := sub :: !out
    end
  done;
  !out

let run ?max_edges ?(embedding_budget = 10_000_000)
    ?(time_budget = Timer.Budget.unlimited) ~min_support taxonomy db =
  let timer = Timer.start () in
  let max_edges = Option.value ~default:max_int max_edges in
  let min_count = Db.support_count_to_threshold db min_support in
  let iso_tests = ref 0 in
  let peak = ref 0 in
  let levels = ref 0 in
  let all_frequent : level_entry list ref = ref [] in
  let keep_label =
    Taxogram.frequent_label_filter taxonomy db ~min_support:min_count
  in
  let edge_labels = frequent_edge_labels db ~min_count in
  let node_labels =
    List.filter keep_label
      (List.init (Taxonomy.label_count taxonomy) (fun i -> i))
  in
  let check_time () =
    if Timer.Budget.exceeded time_budget then raise (Abort Timed_out)
  in
  (* support + stored-embedding accounting for one level *)
  let evaluate_level candidates =
    let stored = ref 0 in
    let entries =
      List.filter_map
        (fun (key, graph) ->
          check_time ();
          let set = Bitset.create (Db.size db) in
          Db.iteri
            (fun gid target ->
              incr iso_tests;
              let count =
                Gen_iso.count_embeddings ~limit:1_000_000 taxonomy
                  ~pattern:graph target
              in
              if count > 0 then begin
                Bitset.set set gid;
                stored := !stored + count;
                if !stored > embedding_budget then
                  raise (Abort Out_of_memory)
              end)
            db;
          if Bitset.cardinal set >= min_count then
            Some { key; graph; support_set = set }
          else None)
        candidates
    in
    peak := max !peak !stored;
    entries
  in
  let outcome = ref Completed in
  (try
     let level = ref (evaluate_level (seed_candidates taxonomy db keep_label)) in
     let edge_count = ref 1 in
     while !level <> [] && !edge_count <= max_edges do
       incr levels;
       all_frequent := !level @ !all_frequent;
       if !edge_count = max_edges then level := []
       else begin
         let freq_keys = Hashtbl.create 256 in
         List.iter (fun e -> Hashtbl.replace freq_keys e.key ()) !level;
         let seen = Hashtbl.create 1024 in
         let candidates = ref [] in
         List.iter
           (fun entry ->
             check_time ();
             List.iter
               (fun cand ->
                 let key = Min_code.canonical_key cand in
                 if not (Hashtbl.mem seen key) then begin
                   Hashtbl.add seen key ();
                   (* Apriori: all connected one-edge-removed subpatterns
                      must be frequent *)
                   let prunable =
                     List.exists
                       (fun sub ->
                         Graph.edge_count sub = !edge_count
                         && not
                              (Hashtbl.mem freq_keys
                                 (Min_code.canonical_key sub)))
                       (connected_subpatterns cand)
                   in
                   if not prunable then candidates := (key, cand) :: !candidates
                 end)
               (extensions entry.graph ~node_labels ~edge_labels))
           !level;
         level := evaluate_level !candidates;
         incr edge_count
       end
     done
   with Abort reason -> outcome := reason);
  (* over-generalization filter: pairwise within structural classes, each
     check its own isomorphism test — the repeated work Taxogram avoids *)
  let frequent = !all_frequent in
  let patterns =
    List.filter_map
      (fun (p : level_entry) ->
        let p_nodes = Graph.node_count p.graph in
        let p_edges = Graph.edge_count p.graph in
        let p_sup = Bitset.cardinal p.support_set in
        let over_generalized =
          List.exists
            (fun (q : level_entry) ->
              q.key <> p.key
              && Graph.node_count q.graph = p_nodes
              && Graph.edge_count q.graph = p_edges
              && Bitset.cardinal q.support_set = p_sup
              &&
              (incr iso_tests;
               Gen_iso.graph_isomorphic taxonomy p.graph q.graph))
            frequent
        in
        if over_generalized then None
        else Some (Pattern.make ~db_size:(Db.size db) p.graph p.support_set))
      frequent
  in
  {
    patterns = Pattern.sort patterns;
    outcome = !outcome;
    iso_tests = !iso_tests;
    embeddings_stored_peak = !peak;
    levels_completed = !levels;
    total_seconds = Timer.elapsed_s timer;
  }
