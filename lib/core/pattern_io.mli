(** Text serialization of mined pattern sets, for CLI pipelines
    (mine to a file, render or post-process later).

    {v
    p # <index> support <count>/<db-size>
    v <node> <node-label-name>
    e <node> <node> <edge-label-name>
    v}

    The support {e set} is not serialized — only its cardinality — so a
    reloaded pattern's [support_set] holds the right number of bits but
    synthetic ids ([0..count-1]).

    Label names are escaped on write: whitespace and ['%'] become [%XX]
    hex escapes and the empty name is spelled as a bare ["%"], so any
    interned name round-trips through the space-split line format.

    Node numbering is {e canonicalized} on write: each connected pattern is
    emitted with node ids in minimum-DFS-code order ({!Tsg_gspan.Min_code}),
    so two isomorphic patterns always serialize identically and the lint
    pass [PAT002] can hold saved artifacts to canonical form. *)

val canonical_form :
  edge_labels:Tsg_graph.Label.t -> Tsg_graph.Graph.t -> Tsg_graph.Graph.t
(** The pattern graph renumbered into serialization-canonical node order:
    minimum DFS code under edge-label ids ranked by {e name}, so the
    result depends only on content, never on an interning order.
    Disconnected and single-node graphs are returned unchanged. Writers
    ({!to_string}) and the [PAT002] lint check share this definition. *)

val to_string :
  node_labels:Tsg_graph.Label.t ->
  edge_labels:Tsg_graph.Label.t ->
  db_size:int ->
  Pattern.t list ->
  string

val save :
  string ->
  node_labels:Tsg_graph.Label.t ->
  edge_labels:Tsg_graph.Label.t ->
  db_size:int ->
  Pattern.t list ->
  unit

exception Parse_error of Tsg_util.Diagnostic.t
(** Carries the offending file (when known), 1-based line, rule code
    [PAT009] and message. *)

val parse :
  ?file:string ->
  node_labels:Tsg_graph.Label.t ->
  edge_labels:Tsg_graph.Label.t ->
  string ->
  Pattern.t list * int
(** Patterns plus the recorded database size.
    @raise Parse_error on malformed input. *)

type located = {
  pattern : Pattern.t;
  header_line : int;  (** 1-based line of the [p] header *)
  recorded_db_size : int;  (** this header's denominator *)
}

val parse_located :
  ?file:string ->
  node_labels:Tsg_graph.Label.t ->
  edge_labels:Tsg_graph.Label.t ->
  string ->
  located list * int
(** As {!parse}, but each pattern carries the line number of its [p] header
    (the anchor the lint passes attach findings to) and the database size
    its own header recorded — the overall size is their maximum. *)

val load :
  node_labels:Tsg_graph.Label.t ->
  edge_labels:Tsg_graph.Label.t ->
  string ->
  Pattern.t list * int
(** @raise Parse_error (with the path as file) on malformed input. *)
