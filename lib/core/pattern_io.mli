(** Text serialization of mined pattern sets, for CLI pipelines
    (mine to a file, render or post-process later).

    {v
    p # <index> support <count>/<db-size>
    v <node> <node-label-name>
    e <node> <node> <edge-label-name>
    v}

    The support {e set} is not serialized — only its cardinality — so a
    reloaded pattern's [support_set] holds the right number of bits but
    synthetic ids ([0..count-1]).

    Label names are escaped on write: whitespace and ['%'] become [%XX]
    hex escapes and the empty name is spelled as a bare ["%"], so any
    interned name round-trips through the space-split line format. *)

val to_string :
  node_labels:Tsg_graph.Label.t ->
  edge_labels:Tsg_graph.Label.t ->
  db_size:int ->
  Pattern.t list ->
  string

val save :
  string ->
  node_labels:Tsg_graph.Label.t ->
  edge_labels:Tsg_graph.Label.t ->
  db_size:int ->
  Pattern.t list ->
  unit

exception Parse_error of int * string

val parse :
  node_labels:Tsg_graph.Label.t ->
  edge_labels:Tsg_graph.Label.t ->
  string ->
  Pattern.t list * int
(** Patterns plus the recorded database size.
    @raise Parse_error on malformed input. *)

val load :
  node_labels:Tsg_graph.Label.t ->
  edge_labels:Tsg_graph.Label.t ->
  string ->
  Pattern.t list * int
