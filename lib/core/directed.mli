(** Taxonomy-superimposed mining of {e directed} graphs.

    The paper states that Taxogram handles directed graphs but, being built
    on a gSpan implementation without direction support, evaluates only
    undirected data (Section 4.1). This module provides the directed mode
    through a sound reduction: every arc [u -(e)-> v] is subdivided into an
    auxiliary {e arc node} carrying a reserved label, connected to [u] by an
    edge labeled [2e] ("source side") and to [v] by an edge labeled [2e+1]
    ("target side"). Embeddings of an encoded pattern in an encoded graph
    correspond one-to-one to direction-respecting embeddings of the original
    pattern, so supports, frequency, and over-generalization all transfer.
    Mined patterns whose encoding contains a dangling arc node (half an
    arc — meaningless in directed semantics) are discarded; patterns that
    decode are exactly the minimal, complete directed pattern set. *)

type env
(** A taxonomy extended with the reserved arc concept. *)

val arc_concept_name : string
(** ["<arc>"] — reserved; [prepare] rejects taxonomies that define it. *)

val prepare : Tsg_taxonomy.Taxonomy.t -> env
(** @raise Invalid_argument if the taxonomy already uses
    {!arc_concept_name}. *)

val taxonomy : env -> Tsg_taxonomy.Taxonomy.t
(** The extended taxonomy (the arc concept is an isolated root). *)

val arc_label : env -> Tsg_graph.Label.id

val encode : env -> Tsg_graph.Digraph.t -> Tsg_graph.Graph.t
(** Arc-subdivision image. Nodes [0..n-1] are the original nodes; node
    [n+k] is the arc node of the k-th arc (in {!Tsg_graph.Digraph.arcs}
    order). *)

val decode : env -> Tsg_graph.Graph.t -> Tsg_graph.Digraph.t option
(** Inverse on complete images: [None] when the graph contains a dangling
    arc node, an arc node with inconsistent edge labels, or an edge between
    two non-arc nodes. Node order of the result follows the first
    appearance of non-arc nodes. *)

val canonical_key : env -> Tsg_graph.Digraph.t -> string
(** Isomorphism-invariant key for weakly connected digraphs (labels
    included), via the encoding's minimum DFS code. *)

type pattern = {
  digraph : Tsg_graph.Digraph.t;
  support_count : int;
  support : float;
  support_set : Tsg_util.Bitset.t;
}

val mine :
  ?min_support:float ->
  ?max_arcs:int ->
  ?enhancements:Specialize.enhancements ->
  env ->
  Tsg_graph.Digraph.t list ->
  pattern list
(** Mine the directed database (defaults: [min_support = 0.2], unbounded
    size, all enhancements). The result is minimal and complete over
    weakly-connected directed patterns with at least one arc. *)

val pp_pattern :
  names:Tsg_graph.Label.t -> Format.formatter -> pattern -> unit
