(** Undirected labeled graphs.

    A graph [G(V, E, L, lambda)] in the paper's notation: every node carries a
    node-label id and every edge an edge-label id (interpret ids against
    whichever {!Label.t} tables the application owns). Simple graphs only: no
    self loops, no parallel edges. Graphs are immutable once built. *)

type node = int
(** Dense node index, [0 .. node_count-1]. *)

type edge = node * node * Label.id
(** Endpoints with [fst < snd], plus the edge label. *)

type t

val build : labels:Label.id array -> edges:(node * node * Label.id) list -> t
(** [build ~labels ~edges] is the graph on [Array.length labels] nodes.
    Endpoint order within an edge is irrelevant.
    @raise Invalid_argument on self loops, duplicate edges, or out-of-range
    endpoints. *)

val empty : t

val node_count : t -> int

val edge_count : t -> int

val node_label : t -> node -> Label.id

val node_labels : t -> Label.id array
(** Fresh copy of the label assignment. *)

val edges : t -> edge array
(** Fresh copy, endpoints normalized with [fst < snd]. *)

val neighbors : t -> node -> (node * Label.id) array
(** Adjacent nodes with the connecting edge's label (shared array — do not
    mutate). *)

val degree : t -> node -> int

val has_edge : t -> node -> node -> bool

val edge_label : t -> node -> node -> Label.id option

val edge_density : t -> float
(** [2 * edge_count / node_count^2], the density measure of Wörlein et al.
    used throughout the paper's evaluation; [0.] for the empty graph. *)

val is_connected : t -> bool
(** True for the empty and one-node graph. *)

val relabel : t -> (node -> Label.id) -> t
(** Same structure, node labels replaced. *)

val induced : t -> node list -> t * node array
(** [induced g nodes] is the subgraph induced by [nodes] (which must be
    distinct) together with the map from new node index to old. *)

val connected_components : t -> node list list

val distinct_node_labels : t -> Label.id list
(** Sorted, without duplicates. *)

val fold_edges : (node -> node -> Label.id -> 'a -> 'a) -> t -> 'a -> 'a

val equal : t -> t -> bool
(** Structural equality under the identity node mapping (same labels, same
    edge set) — {e not} isomorphism. *)

val pp : Format.formatter -> t -> unit
