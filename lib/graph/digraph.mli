(** Directed labeled graphs.

    The paper notes Taxogram handles directed graphs even though its
    gSpan-based implementation (and therefore its evaluation) was restricted
    to undirected ones. This substrate plus {!Tsg_core.Directed} closes that
    gap. Simple digraphs: at most one arc per ordered node pair, no self
    loops; antiparallel arcs ([u -> v] and [v -> u]) are allowed. *)

type node = int

type arc = node * node * Label.id
(** [(source, target, label)]. *)

type t

val build : labels:Label.id array -> arcs:arc list -> t
(** @raise Invalid_argument on self loops, duplicate ordered pairs, or
    out-of-range endpoints. *)

val node_count : t -> int

val arc_count : t -> int

val node_label : t -> node -> Label.id

val node_labels : t -> Label.id array

val arcs : t -> arc array
(** Sorted by (source, target); fresh copy. *)

val out_neighbors : t -> node -> (node * Label.id) array
(** Shared array — do not mutate. *)

val in_neighbors : t -> node -> (node * Label.id) array

val out_degree : t -> node -> int

val in_degree : t -> node -> int

val has_arc : t -> src:node -> dst:node -> bool

val arc_label : t -> src:node -> dst:node -> Label.id option

val is_weakly_connected : t -> bool

val distinct_node_labels : t -> Label.id list

val equal : t -> t -> bool
(** Identity-mapping structural equality, not isomorphism (for an
    isomorphism-invariant key see [Tsg_core.Directed.canonical_key]). *)

val pp : Format.formatter -> t -> unit
