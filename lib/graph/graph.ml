type node = int

type edge = node * node * Label.id

type t = {
  labels : Label.id array;
  adj : (node * Label.id) array array;
  edges : edge array;
}

let normalize (u, v, l) = if u <= v then (u, v, l) else (v, u, l)

let build ~labels ~edges =
  let n = Array.length labels in
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (u, v, _) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Graph.build: edge (%d,%d) out of range [0,%d)" u v n);
      if u = v then
        invalid_arg (Printf.sprintf "Graph.build: self loop at node %d" u);
      let key = if u < v then (u, v) else (v, u) in
      if Hashtbl.mem seen key then
        invalid_arg (Printf.sprintf "Graph.build: duplicate edge (%d,%d)" u v);
      Hashtbl.add seen key ())
    edges;
  let edges = Array.of_list (List.map normalize edges) in
  Array.sort compare edges;
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v, _) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun i -> Array.make deg.(i) (0, 0)) in
  let fill = Array.make n 0 in
  Array.iter
    (fun (u, v, l) ->
      adj.(u).(fill.(u)) <- (v, l);
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- (u, l);
      fill.(v) <- fill.(v) + 1)
    edges;
  { labels = Array.copy labels; adj; edges }

let empty = { labels = [||]; adj = [||]; edges = [||] }

let node_count g = Array.length g.labels

let edge_count g = Array.length g.edges

let node_label g v = g.labels.(v)

let node_labels g = Array.copy g.labels

let edges g = Array.copy g.edges

let neighbors g v = g.adj.(v)

let degree g v = Array.length g.adj.(v)

let has_edge g u v = Array.exists (fun (w, _) -> w = v) g.adj.(u)

let edge_label g u v =
  let found = Array.find_opt (fun (w, _) -> w = v) g.adj.(u) in
  Option.map snd found

let edge_density g =
  let n = node_count g in
  if n = 0 then 0.0
  else 2.0 *. float_of_int (edge_count g) /. float_of_int (n * n)

let bfs_reach g start =
  let n = node_count g in
  let visited = Array.make n false in
  let queue = Queue.create () in
  Queue.add start queue;
  visited.(start) <- true;
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr count;
    Array.iter
      (fun (w, _) ->
        if not visited.(w) then begin
          visited.(w) <- true;
          Queue.add w queue
        end)
      g.adj.(v)
  done;
  (visited, !count)

let is_connected g =
  let n = node_count g in
  n <= 1 || snd (bfs_reach g 0) = n

let relabel g f =
  {
    g with
    labels = Array.init (node_count g) (fun v -> f v);
  }

let induced g nodes =
  let keep = Array.of_list nodes in
  let n = Array.length keep in
  let old_to_new = Hashtbl.create n in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem old_to_new v then
        invalid_arg "Graph.induced: duplicate node"
      else Hashtbl.add old_to_new v i)
    keep;
  let labels = Array.map (fun v -> g.labels.(v)) keep in
  let edges =
    Array.fold_left
      (fun acc (u, v, l) ->
        match (Hashtbl.find_opt old_to_new u, Hashtbl.find_opt old_to_new v)
        with
        | Some u', Some v' -> (u', v', l) :: acc
        | _ -> acc)
      [] g.edges
  in
  (build ~labels ~edges, keep)

let connected_components g =
  let n = node_count g in
  let seen = Array.make n false in
  let components = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let visited, _ = bfs_reach g v in
      let members = ref [] in
      for w = n - 1 downto 0 do
        if visited.(w) && not seen.(w) then begin
          seen.(w) <- true;
          members := w :: !members
        end
      done;
      components := !members :: !components
    end
  done;
  List.rev !components

let distinct_node_labels g =
  List.sort_uniq compare (Array.to_list g.labels)

let fold_edges f g init =
  Array.fold_left (fun acc (u, v, l) -> f u v l acc) init g.edges

let equal a b = a.labels = b.labels && a.edges = b.edges

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d nodes, %d edges@," (node_count g)
    (edge_count g);
  Array.iteri (fun v l -> Format.fprintf ppf "  node %d label %d@," v l)
    g.labels;
  Array.iter (fun (u, v, l) -> Format.fprintf ppf "  edge %d-%d label %d@," u v l)
    g.edges;
  Format.fprintf ppf "@]"
