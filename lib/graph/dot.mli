(** Graphviz DOT rendering of graphs (and, in {!Tsg_taxonomy}, taxonomies)
    for eyeballing mined patterns. *)

val graph :
  ?name:string ->
  ?node_labels:Label.t ->
  ?edge_labels:Label.t ->
  Graph.t ->
  string
(** [graph g] is a DOT [graph] block; label tables, when given, render names
    instead of numeric ids. *)

val save :
  string ->
  ?name:string ->
  ?node_labels:Label.t ->
  ?edge_labels:Label.t ->
  Graph.t ->
  unit
