type id = int

(* A table is a frozen, immutable base (shared freely across domains)
   plus a mutable overlay for names interned after the base was frozen.
   [Snapshot.of_table] of a table whose overlay is empty is O(1) — it
   just shares the base — and [Snapshot.to_table] is always O(1), so
   handing a read-only copy of a table to another domain (a pool worker,
   a serve connection) costs nothing on the hot path. *)

type snapshot = {
  s_by_name : (string, id) Hashtbl.t;  (* never mutated after build *)
  s_by_id : string array;  (* never mutated after build *)
}

type t = {
  mutable base : snapshot;
  by_name : (string, id) Hashtbl.t;  (* overlay: names interned post-base *)
  mutable by_id : string array;  (* overlay storage, index [id - base size] *)
  mutable size : int;  (* total, including the base *)
}

let create () =
  {
    base = { s_by_name = Hashtbl.create 1; s_by_id = [||] };
    by_name = Hashtbl.create 64;
    by_id = Array.make 16 "";
    size = 0;
  }

let size t = t.size

let base_size t = Array.length t.base.s_by_id

let grow t =
  let used = t.size - base_size t in
  if used = Array.length t.by_id then begin
    let bigger = Array.make (max 16 (2 * used)) "" in
    Array.blit t.by_id 0 bigger 0 used;
    t.by_id <- bigger
  end

let intern t name =
  match Hashtbl.find_opt t.base.s_by_name name with
  | Some id -> id
  | None -> (
    match Hashtbl.find_opt t.by_name name with
    | Some id -> id
    | None ->
      grow t;
      let id = t.size in
      t.by_id.(id - base_size t) <- name;
      t.size <- t.size + 1;
      Hashtbl.add t.by_name name id;
      id)

let find t name =
  match Hashtbl.find_opt t.base.s_by_name name with
  | Some _ as r -> r
  | None -> Hashtbl.find_opt t.by_name name

let find_exn t name =
  match find t name with Some id -> id | None -> raise Not_found

let name t id =
  if id < 0 || id >= t.size then
    invalid_arg (Printf.sprintf "Label.name: id %d out of range" id);
  let b = base_size t in
  if id < b then t.base.s_by_id.(id) else t.by_id.(id - b)

let mem t n =
  Hashtbl.mem t.base.s_by_name n || Hashtbl.mem t.by_name n

let names t =
  Array.init t.size (fun id -> name t id)

let of_names list =
  let t = create () in
  List.iter
    (fun n ->
      if mem t n then invalid_arg ("Label.of_names: duplicate name " ^ n)
      else ignore (intern t n))
    list;
  t

(* Flatten base + overlay into one frozen snapshot. *)
let flatten t =
  let arr = names t in
  let by_name = Hashtbl.create (max 16 (2 * t.size)) in
  Array.iteri (fun id n -> Hashtbl.add by_name n id) arr;
  { s_by_name = by_name; s_by_id = arr }

let freeze t =
  if t.size > base_size t then begin
    t.base <- flatten t;
    Hashtbl.reset t.by_name;
    t.by_id <- [||]
  end

module Snapshot = struct
  type table = t

  type t = snapshot

  let of_table (tbl : table) =
    if tbl.size = base_size tbl then tbl.base else flatten tbl

  let to_table (s : t) =
    {
      base = s;
      by_name = Hashtbl.create 8;
      by_id = Array.make 16 "";
      size = Array.length s.s_by_id;
    }

  let size s = Array.length s.s_by_id

  let name s id =
    if id < 0 || id >= Array.length s.s_by_id then
      invalid_arg (Printf.sprintf "Label.Snapshot.name: id %d out of range" id);
    s.s_by_id.(id)

  let find s n = Hashtbl.find_opt s.s_by_name n

  let find_exn s n =
    match find s n with Some id -> id | None -> raise Not_found

  let mem s n = Hashtbl.mem s.s_by_name n

  let names s = Array.copy s.s_by_id
end
