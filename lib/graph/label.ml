type id = int

type t = {
  by_name : (string, id) Hashtbl.t;
  mutable by_id : string array;
  mutable size : int;
}

let create () = { by_name = Hashtbl.create 64; by_id = Array.make 16 ""; size = 0 }

let size t = t.size

let grow t =
  if t.size = Array.length t.by_id then begin
    let bigger = Array.make (max 16 (2 * t.size)) "" in
    Array.blit t.by_id 0 bigger 0 t.size;
    t.by_id <- bigger
  end

let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
    grow t;
    let id = t.size in
    t.by_id.(id) <- name;
    t.size <- t.size + 1;
    Hashtbl.add t.by_name name id;
    id

let find t name = Hashtbl.find_opt t.by_name name

let find_exn t name =
  match find t name with Some id -> id | None -> raise Not_found

let name t id =
  if id < 0 || id >= t.size then
    invalid_arg (Printf.sprintf "Label.name: id %d out of range" id);
  t.by_id.(id)

let mem t n = Hashtbl.mem t.by_name n

let names t = Array.sub t.by_id 0 t.size

let of_names list =
  let t = create () in
  List.iter
    (fun n ->
      if mem t n then invalid_arg ("Label.of_names: duplicate name " ^ n)
      else ignore (intern t n))
    list;
  t
