(** Text serialization of graph databases in a gSpan-style line format.

    {v
    t # <graph-index>
    v <node> <node-label-name>
    e <node> <node> <edge-label-name>
    v}

    Labels are written by name so files are self-describing; reading interns
    names into caller-supplied tables. *)

val write_db :
  Buffer.t -> node_labels:Label.t -> edge_labels:Label.t -> Db.t -> unit

val db_to_string : node_labels:Label.t -> edge_labels:Label.t -> Db.t -> string

val save_db :
  string -> node_labels:Label.t -> edge_labels:Label.t -> Db.t -> unit
(** Write to a file path. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse_db : node_labels:Label.t -> edge_labels:Label.t -> string -> Db.t
(** Parse the serialized form, interning label names into the given tables.
    @raise Parse_error on malformed input. *)

val load_db : node_labels:Label.t -> edge_labels:Label.t -> string -> Db.t
(** Read from a file path. *)

(** {1 Raw form}

    The unvalidated content of a database file, with source line numbers —
    what the lint passes ({!Tsg_check.Check_db}) analyze, so structurally
    broken files (dangling endpoints, self loops, duplicate edges) can
    still be read and diagnosed precisely. [parse_db_raw] never raises:
    lines it cannot make sense of are returned in [bad_lines]. *)

type raw_node = { v_index : int; v_label : string; v_line : int }

type raw_edge = { e_src : int; e_dst : int; e_label : string; e_line : int }

type raw_graph = {
  g_line : int;  (** line of the [t] header *)
  g_nodes : raw_node list;  (** in file order *)
  g_edges : raw_edge list;  (** in file order *)
}

type raw_db = {
  graphs : raw_graph list;
  bad_lines : (int * string) list;  (** line, problem description *)
}

val parse_db_raw : string -> raw_db

(** {1 Directed databases}

    Same line format with [a <src> <dst> <arc-label-name>] lines instead of
    [e] lines. *)

val digraphs_to_string :
  node_labels:Label.t -> arc_labels:Label.t -> Digraph.t list -> string

val save_digraphs :
  string -> node_labels:Label.t -> arc_labels:Label.t -> Digraph.t list -> unit

val parse_digraphs :
  node_labels:Label.t -> arc_labels:Label.t -> string -> Digraph.t list
(** @raise Parse_error on malformed input (including [e] lines: directed
    and undirected databases are distinct formats). *)

val load_digraphs :
  node_labels:Label.t -> arc_labels:Label.t -> string -> Digraph.t list
