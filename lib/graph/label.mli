(** Interned label tables.

    Node and edge labels are strings at the API boundary but dense integer
    ids everywhere inside the miners; a table owns the bijection. *)

type id = int
(** Dense identifier, [0 .. size-1]. *)

type t

val create : unit -> t

val size : t -> int

val intern : t -> string -> id
(** Id of the given name, allocating a fresh id on first sight. *)

val find : t -> string -> id option
(** Id of the given name if already interned. *)

val find_exn : t -> string -> id
(** @raise Not_found when the name was never interned. *)

val name : t -> id -> string
(** @raise Invalid_argument on an out-of-range id. *)

val mem : t -> string -> bool

val names : t -> string array
(** All names indexed by id; fresh array. *)

val of_names : string list -> t
(** Table pre-populated in list order.
    @raise Invalid_argument on duplicate names. *)
