(** Interned label tables.

    Node and edge labels are strings at the API boundary but dense integer
    ids everywhere inside the miners; a table owns the bijection.

    A table is internally a {e frozen base} (immutable, safely shared
    across domains) plus a mutable overlay for names interned after the
    base was built. {!freeze} folds the overlay into the base; after a
    freeze, every lookup touches only immutable data, so concurrent
    readers on other domains are safe as long as nobody interns. The
    parallel miner freezes its tables before fanning out, and the serving
    layer shares one {!Snapshot} per engine generation, giving each
    connection an O(1) private table over it. *)

type id = int
(** Dense identifier, [0 .. size-1]. *)

type t

val create : unit -> t

val size : t -> int

val intern : t -> string -> id
(** Id of the given name, allocating a fresh id on first sight. Not
    domain-safe: interning is a setup-phase operation — {!freeze} before
    sharing the table with other domains. *)

val find : t -> string -> id option
(** Id of the given name if already interned. *)

val find_exn : t -> string -> id
(** @raise Not_found when the name was never interned. *)

val name : t -> id -> string
(** @raise Invalid_argument on an out-of-range id. *)

val mem : t -> string -> bool

val names : t -> string array
(** All names indexed by id; fresh array. *)

val of_names : string list -> t
(** Table pre-populated in list order.
    @raise Invalid_argument on duplicate names. *)

val freeze : t -> unit
(** Fold any overlay entries into the frozen base (O(size) when there is
    an overlay, O(1) otherwise). Ids and names are unchanged. After the
    call, lookups read only immutable structures, so the table may be
    read concurrently from any number of domains; a later {!intern}
    starts a fresh overlay and ends that guarantee until the next
    freeze. *)

(** Immutable views. A snapshot is cheap to share (it is the frozen base
    itself — no copying when the table was just frozen) and supports all
    read operations; {!Snapshot.to_table} builds a mutable table {e over}
    a snapshot in O(1), sharing the base and interning any new names into
    a private overlay. *)
module Snapshot : sig
  type table := t

  type t

  val of_table : table -> t
  (** O(1) if the table has no overlay (e.g. right after {!freeze} or
      {!of_names} followed by freeze); otherwise flattens in O(size). *)

  val to_table : t -> table
  (** O(1): a fresh mutable table whose frozen base is this snapshot.
      Interning into the result never touches the snapshot. *)

  val size : t -> int

  val name : t -> id -> string
  (** @raise Invalid_argument on an out-of-range id. *)

  val find : t -> string -> id option

  val find_exn : t -> string -> id
  (** @raise Not_found when the name is not in the snapshot. *)

  val mem : t -> string -> bool

  val names : t -> string array
  (** All names indexed by id; fresh array. *)
end
