type t = { graphs : Graph.t array }

let of_array graphs = { graphs }

let of_list graphs = of_array (Array.of_list graphs)

let size t = Array.length t.graphs

let get t i = t.graphs.(i)

let iteri f t = Array.iteri f t.graphs

let fold f init t = Array.fold_left f init t.graphs

let to_list t = Array.to_list t.graphs

let map f t = of_array (Array.map f t.graphs)

let avg over t =
  if size t = 0 then 0.0
  else
    float_of_int (Array.fold_left (fun acc g -> acc + over g) 0 t.graphs)
    /. float_of_int (size t)

let avg_nodes t = avg Graph.node_count t

let avg_edges t = avg Graph.edge_count t

let distinct_labels t =
  let seen = Hashtbl.create 256 in
  Array.iter
    (fun g ->
      List.iter
        (fun l -> if not (Hashtbl.mem seen l) then Hashtbl.add seen l ())
        (Graph.distinct_node_labels g))
    t.graphs;
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) seen [])

let distinct_label_count t = List.length (distinct_labels t)

let distinct_edge_labels t =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun g ->
      Array.iter
        (fun (_, _, l) -> if not (Hashtbl.mem seen l) then Hashtbl.add seen l ())
        (Graph.edges g))
    t.graphs;
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) seen [])

let avg_edge_density t =
  if size t = 0 then 0.0
  else
    Array.fold_left (fun acc g -> acc +. Graph.edge_density g) 0.0 t.graphs
    /. float_of_int (size t)

let max_over over t = Array.fold_left (fun acc g -> max acc (over g)) 0 t.graphs

let max_graph_nodes t = max_over Graph.node_count t

let max_graph_edges t = max_over Graph.edge_count t

let support_count_to_threshold t theta =
  if theta < 0.0 || theta > 1.0 then
    invalid_arg "Db.support_count_to_threshold: theta outside [0,1]";
  max 1 (int_of_float (ceil (theta *. float_of_int (size t))))

type statistics = {
  graphs : int;
  avg_nodes : float;
  avg_edges : float;
  distinct_labels : int;
  avg_density : float;
}

let statistics t =
  {
    graphs = size t;
    avg_nodes = avg_nodes t;
    avg_edges = avg_edges t;
    distinct_labels = distinct_label_count t;
    avg_density = avg_edge_density t;
  }

let pp_statistics ppf s =
  Format.fprintf ppf
    "graphs=%d avg_nodes=%.1f avg_edges=%.1f distinct_labels=%d density=%.2f"
    s.graphs s.avg_nodes s.avg_edges s.distinct_labels s.avg_density
