(** Graph databases: an indexed collection of graphs mined together.

    Carries the per-database statistics the paper reports in Table 1
    (graph count, average node/edge counts, distinct label count, average
    edge density). *)

type t

val of_list : Graph.t list -> t

val of_array : Graph.t array -> t
(** Takes ownership of the array; do not mutate afterwards. *)

val size : t -> int
(** Number of graphs ("DB Size" in Table 1). *)

val get : t -> int -> Graph.t

val iteri : (int -> Graph.t -> unit) -> t -> unit

val fold : ('a -> Graph.t -> 'a) -> 'a -> t -> 'a

val to_list : t -> Graph.t list

val map : (Graph.t -> Graph.t) -> t -> t

val avg_nodes : t -> float

val avg_edges : t -> float

val distinct_label_count : t -> int
(** Distinct node labels across all graphs ("Dist. Label Count"). *)

val distinct_labels : t -> Label.id list

val distinct_edge_labels : t -> Label.id list

val avg_edge_density : t -> float

val max_graph_nodes : t -> int

val max_graph_edges : t -> int

val support_count_to_threshold : t -> float -> int
(** [support_count_to_threshold db theta] is the minimum number of graphs a
    pattern must occur in to have support at least [theta]
    (i.e. [ceil (theta *. size db)], at least 1). *)

(** A Table 1 row. *)
type statistics = {
  graphs : int;
  avg_nodes : float;
  avg_edges : float;
  distinct_labels : int;
  avg_density : float;
}

val statistics : t -> statistics

val pp_statistics : Format.formatter -> statistics -> unit
