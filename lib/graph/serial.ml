let write_graph buf ~node_labels ~edge_labels index g =
  Buffer.add_string buf (Printf.sprintf "t # %d\n" index);
  for v = 0 to Graph.node_count g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "v %d %s\n" v (Label.name node_labels (Graph.node_label g v)))
  done;
  Array.iter
    (fun (u, v, l) ->
      Buffer.add_string buf
        (Printf.sprintf "e %d %d %s\n" u v (Label.name edge_labels l)))
    (Graph.edges g)

let write_db buf ~node_labels ~edge_labels db =
  Db.iteri (fun i g -> write_graph buf ~node_labels ~edge_labels i g) db

let db_to_string ~node_labels ~edge_labels db =
  let buf = Buffer.create 4096 in
  write_db buf ~node_labels ~edge_labels db;
  Buffer.contents buf

let save_db path ~node_labels ~edge_labels db =
  Tsg_util.Fault.inject "serial.save";
  Tsg_util.Safe_io.write_atomic path (db_to_string ~node_labels ~edge_labels db)

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

type partial = {
  mutable labels : (int * Label.id) list;
  mutable edges : (int * int * Label.id) list;
}

let finish line p =
  let count =
    List.fold_left (fun acc (v, _) -> max acc (v + 1)) 0 p.labels
  in
  let labels = Array.make count (-1) in
  List.iter
    (fun (v, l) ->
      if v < 0 then fail line (Printf.sprintf "negative node index %d" v)
      else if labels.(v) <> -1 then
        fail line (Printf.sprintf "duplicate node %d" v)
      else labels.(v) <- l)
    p.labels;
  Array.iteri
    (fun v l -> if l = -1 then fail line (Printf.sprintf "missing node %d" v))
    labels;
  try Graph.build ~labels ~edges:p.edges
  with Invalid_argument msg -> fail line msg

let parse_db ~node_labels ~edge_labels text =
  let graphs = ref [] in
  let current = ref None in
  let lineno = ref 0 in
  let close_current () =
    match !current with
    | None -> ()
    | Some p ->
      graphs := finish !lineno p :: !graphs;
      current := None
  in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         incr lineno;
         let line = String.trim raw in
         if line = "" || line.[0] = '#' then ()
         else
           match String.split_on_char ' ' line with
           | "t" :: _ ->
             close_current ();
             current := Some { labels = []; edges = [] }
           | [ "v"; v; name ] -> (
             match (!current, int_of_string_opt v) with
             | None, _ -> fail !lineno "'v' before any 't' header"
             | _, None -> fail !lineno ("bad node index " ^ v)
             | Some p, Some v ->
               p.labels <- (v, Label.intern node_labels name) :: p.labels)
           | [ "e"; u; v; name ] -> (
             match (!current, int_of_string_opt u, int_of_string_opt v) with
             | None, _, _ -> fail !lineno "'e' before any 't' header"
             | _, None, _ | _, _, None -> fail !lineno "bad edge endpoints"
             | Some p, Some u, Some v ->
               p.edges <- (u, v, Label.intern edge_labels name) :: p.edges)
           | _ -> fail !lineno ("unrecognized line: " ^ line));
  close_current ();
  Db.of_list (List.rev !graphs)

type raw_node = { v_index : int; v_label : string; v_line : int }

type raw_edge = { e_src : int; e_dst : int; e_label : string; e_line : int }

type raw_graph = {
  g_line : int;
  g_nodes : raw_node list;
  g_edges : raw_edge list;
}

type raw_db = {
  graphs : raw_graph list;
  bad_lines : (int * string) list;
}

let parse_db_raw text =
  let graphs = ref [] in
  let bad = ref [] in
  let current = ref None in
  let lineno = ref 0 in
  let close_current () =
    match !current with
    | None -> ()
    | Some g ->
      graphs :=
        { g with g_nodes = List.rev g.g_nodes; g_edges = List.rev g.g_edges }
        :: !graphs;
      current := None
  in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         incr lineno;
         let line = String.trim raw in
         if line = "" || line.[0] = '#' then ()
         else
           match String.split_on_char ' ' line with
           | "t" :: _ ->
             close_current ();
             current := Some { g_line = !lineno; g_nodes = []; g_edges = [] }
           | [ "v"; v; name ] -> (
             match (!current, int_of_string_opt v) with
             | None, _ -> bad := (!lineno, "'v' before any 't' header") :: !bad
             | _, None -> bad := (!lineno, "bad node index " ^ v) :: !bad
             | Some g, Some v ->
               current :=
                 Some
                   {
                     g with
                     g_nodes =
                       { v_index = v; v_label = name; v_line = !lineno }
                       :: g.g_nodes;
                   })
           | [ "e"; u; v; name ] -> (
             match (!current, int_of_string_opt u, int_of_string_opt v) with
             | None, _, _ ->
               bad := (!lineno, "'e' before any 't' header") :: !bad
             | _, None, _ | _, _, None ->
               bad := (!lineno, "bad edge endpoints") :: !bad
             | Some g, Some u, Some v ->
               current :=
                 Some
                   {
                     g with
                     g_edges =
                       { e_src = u; e_dst = v; e_label = name; e_line = !lineno }
                       :: g.g_edges;
                   })
           | _ -> bad := (!lineno, "unrecognized line: " ^ line) :: !bad);
  close_current ();
  { graphs = List.rev !graphs; bad_lines = List.rev !bad }

let read_file path =
  Tsg_util.Fault.inject "serial.load";
  Tsg_util.Safe_io.read_file path

let load_db ~node_labels ~edge_labels path =
  parse_db ~node_labels ~edge_labels (read_file path)

(* --- directed databases --------------------------------------------------- *)

let digraphs_to_string ~node_labels ~arc_labels digraphs =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun index g ->
      Buffer.add_string buf (Printf.sprintf "t # %d\n" index);
      for v = 0 to Digraph.node_count g - 1 do
        Buffer.add_string buf
          (Printf.sprintf "v %d %s\n" v
             (Label.name node_labels (Digraph.node_label g v)))
      done;
      Array.iter
        (fun (u, v, l) ->
          Buffer.add_string buf
            (Printf.sprintf "a %d %d %s\n" u v (Label.name arc_labels l)))
        (Digraph.arcs g))
    digraphs;
  Buffer.contents buf

let save_digraphs path ~node_labels ~arc_labels digraphs =
  Tsg_util.Fault.inject "serial.save";
  Tsg_util.Safe_io.write_atomic path
    (digraphs_to_string ~node_labels ~arc_labels digraphs)

let finish_digraph line p =
  let count =
    List.fold_left (fun acc (v, _) -> max acc (v + 1)) 0 p.labels
  in
  let labels = Array.make count (-1) in
  List.iter
    (fun (v, l) ->
      if v < 0 then fail line (Printf.sprintf "negative node index %d" v)
      else if labels.(v) <> -1 then
        fail line (Printf.sprintf "duplicate node %d" v)
      else labels.(v) <- l)
    p.labels;
  Array.iteri
    (fun v l -> if l = -1 then fail line (Printf.sprintf "missing node %d" v))
    labels;
  try Digraph.build ~labels ~arcs:p.edges
  with Invalid_argument msg -> fail line msg

let parse_digraphs ~node_labels ~arc_labels text =
  let graphs = ref [] in
  let current = ref None in
  let lineno = ref 0 in
  let close_current () =
    match !current with
    | None -> ()
    | Some p ->
      graphs := finish_digraph !lineno p :: !graphs;
      current := None
  in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         incr lineno;
         let line = String.trim raw in
         if line = "" || line.[0] = '#' then ()
         else
           match String.split_on_char ' ' line with
           | "t" :: _ ->
             close_current ();
             current := Some { labels = []; edges = [] }
           | [ "v"; v; name ] -> (
             match (!current, int_of_string_opt v) with
             | None, _ -> fail !lineno "'v' before any 't' header"
             | _, None -> fail !lineno ("bad node index " ^ v)
             | Some p, Some v ->
               p.labels <- (v, Label.intern node_labels name) :: p.labels)
           | [ "a"; u; v; name ] -> (
             match (!current, int_of_string_opt u, int_of_string_opt v) with
             | None, _, _ -> fail !lineno "'a' before any 't' header"
             | _, None, _ | _, _, None -> fail !lineno "bad arc endpoints"
             | Some p, Some u, Some v ->
               p.edges <- (u, v, Label.intern arc_labels name) :: p.edges)
           | [ "e"; _; _; _ ] ->
             fail !lineno "'e' line in a directed database (expected 'a')"
           | _ -> fail !lineno ("unrecognized line: " ^ line));
  close_current ();
  List.rev !graphs

let load_digraphs ~node_labels ~arc_labels path =
  parse_digraphs ~node_labels ~arc_labels (read_file path)
