let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_label table id =
  match table with
  | Some t when id >= 0 && id < Label.size t -> Label.name t id
  | _ -> string_of_int id

let graph ?(name = "G") ?node_labels ?edge_labels g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n" (escape name));
  for v = 0 to Graph.node_count g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\"];\n" v
         (escape (render_label node_labels (Graph.node_label g v))))
  done;
  Array.iter
    (fun (u, v, l) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -- n%d [label=\"%s\"];\n" u v
           (escape (render_label edge_labels l))))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save path ?name ?node_labels ?edge_labels g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (graph ?name ?node_labels ?edge_labels g))
[@@tsg.allow "IO101"
  "dot renderings are disposable visualisation output, not pipeline \
   artifacts: a torn write costs a re-render, never a corrupt input"]
