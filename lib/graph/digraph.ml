type node = int

type arc = node * node * Label.id

type t = {
  labels : Label.id array;
  out_adj : (node * Label.id) array array;
  in_adj : (node * Label.id) array array;
  arcs : arc array;
}

let build ~labels ~arcs =
  let n = Array.length labels in
  let seen = Hashtbl.create (List.length arcs) in
  List.iter
    (fun (u, v, _) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Digraph.build: arc (%d,%d) out of range [0,%d)" u v n);
      if u = v then
        invalid_arg (Printf.sprintf "Digraph.build: self loop at node %d" u);
      if Hashtbl.mem seen (u, v) then
        invalid_arg (Printf.sprintf "Digraph.build: duplicate arc (%d,%d)" u v);
      Hashtbl.add seen (u, v) ())
    arcs;
  let arcs = Array.of_list arcs in
  Array.sort compare arcs;
  let out_deg = Array.make n 0 and in_deg = Array.make n 0 in
  Array.iter
    (fun (u, v, _) ->
      out_deg.(u) <- out_deg.(u) + 1;
      in_deg.(v) <- in_deg.(v) + 1)
    arcs;
  let out_adj = Array.init n (fun i -> Array.make out_deg.(i) (0, 0)) in
  let in_adj = Array.init n (fun i -> Array.make in_deg.(i) (0, 0)) in
  let out_fill = Array.make n 0 and in_fill = Array.make n 0 in
  Array.iter
    (fun (u, v, l) ->
      out_adj.(u).(out_fill.(u)) <- (v, l);
      out_fill.(u) <- out_fill.(u) + 1;
      in_adj.(v).(in_fill.(v)) <- (u, l);
      in_fill.(v) <- in_fill.(v) + 1)
    arcs;
  { labels = Array.copy labels; out_adj; in_adj; arcs }

let node_count g = Array.length g.labels

let arc_count g = Array.length g.arcs

let node_label g v = g.labels.(v)

let node_labels g = Array.copy g.labels

let arcs g = Array.copy g.arcs

let out_neighbors g v = g.out_adj.(v)

let in_neighbors g v = g.in_adj.(v)

let out_degree g v = Array.length g.out_adj.(v)

let in_degree g v = Array.length g.in_adj.(v)

let has_arc g ~src ~dst = Array.exists (fun (w, _) -> w = dst) g.out_adj.(src)

let arc_label g ~src ~dst =
  Option.map snd (Array.find_opt (fun (w, _) -> w = dst) g.out_adj.(src))

let is_weakly_connected g =
  let n = node_count g in
  if n <= 1 then true
  else begin
    let visited = Array.make n false in
    let queue = Queue.create () in
    Queue.add 0 queue;
    visited.(0) <- true;
    let count = ref 0 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      incr count;
      let visit (w, _) =
        if not visited.(w) then begin
          visited.(w) <- true;
          Queue.add w queue
        end
      in
      Array.iter visit g.out_adj.(v);
      Array.iter visit g.in_adj.(v)
    done;
    !count = n
  end

let distinct_node_labels g =
  List.sort_uniq compare (Array.to_list g.labels)

let equal a b = a.labels = b.labels && a.arcs = b.arcs

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph: %d nodes, %d arcs@," (node_count g)
    (arc_count g);
  Array.iteri (fun v l -> Format.fprintf ppf "  node %d label %d@," v l)
    g.labels;
  Array.iter
    (fun (u, v, l) -> Format.fprintf ppf "  arc %d->%d label %d@," u v l)
    g.arcs;
  Format.fprintf ppf "@]"
