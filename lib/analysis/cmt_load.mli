(** Loading the project's own typed trees.

    [tsg-analyze] works on the [.cmt] binary annotation files the
    compiler emits next to every compiled unit (dune's [@check] alias
    builds them without linking). Each readable implementation unit
    becomes a {!unit_info}: the typed tree plus the unit's name and
    import list, which {!Analyze} uses for cross-module taint
    propagation. *)

type unit_info = {
  modname : string;  (** compilation unit name, e.g. ["Tsg_util__Fault"] *)
  source : string;
      (** source path as recorded at compile time, e.g.
          ["lib/util/fault.ml"] — used for finding locations *)
  imports : string list;  (** unit names this unit depends on *)
  structure : Typedtree.structure;
  cmt_path : string;  (** the [.cmt] file the unit was read from *)
}

val discover : string list -> string list
(** [discover roots] walks each existing root directory recursively and
    returns every [*.cmt] path found, sorted. A root that is itself a
    [.cmt] file is returned as is; missing roots are skipped. *)

val load : string -> (unit_info option, string) result
(** Read one [.cmt]. [Ok None] when the file is not an implementation
    unit worth analyzing: an interface-only or packed unit, or a
    dune-generated module-alias unit (source ["*.ml-gen"]). [Error msg]
    when the file is unreadable or from an incompatible compiler. *)

val load_all :
  Tsg_util.Diagnostic.collector -> string list -> unit_info list
(** Load every path, emitting [ANA002] for unreadable files, skipping
    non-implementations, and keeping the first occurrence of each unit
    name (paths are processed in the given order). *)
