(** Domain-safety and determinism rules over the project's typed trees.

    The analyzer enforces, mechanically, the invariants the multicore
    miner's qcheck properties only sample: no unguarded shared mutable
    state on pool domains, no [Lazy] in domain-executed code, no
    hash-order or ambient-randomness nondeterminism feeding canonical
    output, no artifact writes that bypass crash-safe IO, and no stray
    diagnostic or protocol codes outside the central registry.

    {2 Rules}

    - [DOM001] — a toplevel [ref]/[Hashtbl.t]/[Buffer.t]/[Queue.t] in a
      {e domain-executed} module, defined without any same-module
      [Mutex.t], or accessed by a toplevel function that takes no mutex
      (directly, or via a one-level lock-wrapper helper) and is not
      [Atomic]-backed.
    - [DOM002] — [lazy] expressions or patterns, or [Lazy.force]
      (including [CamlinternalLazy]), in a domain-executed module:
      OCaml 5 lazy blocks are not domain-safe.
    - [DET001] — [Hashtbl.iter]/[Hashtbl.fold] whose callback writes
      directly to an output sink, or whose result is passed straight to
      a sink, with no intervening sort: hash order would leak into
      serialized output.
    - [DET002] — ambient [Random.*] (anything outside [Random.State]
      with an explicit state, plus [Random.self_init] and
      [Random.State.make_self_init]): library results must be
      reproducible from recorded seeds.
    - [IO101] — [open_out]/[open_out_bin]/[open_out_gen] anywhere but
      {!Tsg_util.Safe_io}: artifact writes must be atomic
      (temp+fsync+rename); non-artifact writers carry a justified
      suppression.
    - [REG001] — a rule-shaped string literal (["TAX005"], ["DOM001"],
      …) absent from {!Tsg_util.Diagnostic.Registry.rules}, or an
      all-caps literal matched or compared as a protocol error code but
      absent from [Registry.protocol_errors].

    A module is {e domain-executed} when it schedules work itself
    ([Tsg_util.Pool.run]/[run_supervised]/[fork], [Domain.spawn],
    [Thread.create]) or is imported — transitively — by a module that
    does: anything a scheduling module depends on can run inside a pool
    task.

    {2 Suppression}

    A finding is suppressed by an attribute carrying the rule code and a
    mandatory justification, at expression, binding, or module scope:
    {[
      let save path g = ... [@@tsg.allow "IO101" "dot files are not crash-safe artifacts"]
    ]}
    A missing justification or unknown code is itself a finding
    ([ANA001]). Grandfathered sites can instead live in an allowlist
    file (one [RULE FILE IDENT] triple per line); entries that no longer
    match anything are reported stale ([ANA003]). *)

type allow_entry = {
  al_rule : string;
  al_file : string;  (** source file basename *)
  al_ident : string;  (** enclosing toplevel binding, or ["-"] for any *)
}

val parse_allowlist : string -> (allow_entry list, string) result
(** Parse an allowlist file: [#] comments, blank lines, and
    [RULE FILE IDENT] triples separated by whitespace. *)

type summary = {
  units : int;  (** implementation units analyzed *)
  suppressed : int;  (** findings dropped by [\[@tsg.allow\]] *)
  allowlisted : int;  (** findings dropped by the allowlist *)
}

val run :
  ?rules:string list ->
  ?allowlist:allow_entry list ->
  ?allowlist_file:string ->
  Tsg_util.Diagnostic.collector ->
  Cmt_load.unit_info list ->
  summary
(** Analyze the units, emitting findings into the collector. [?rules]
    restricts checking to the given codes ([ANA*] findings are always
    emitted). Stale allowlist entries are reported against
    [?allowlist_file]. *)
