module Diagnostic = Tsg_util.Diagnostic

type unit_info = {
  modname : string;
  source : string;
  imports : string list;
  structure : Typedtree.structure;
  cmt_path : string;
}

let rec walk acc path =
  match Sys.is_directory path with
  | true ->
    Array.fold_left
      (fun acc entry -> walk acc (Filename.concat path entry))
      acc (Sys.readdir path)
  | false ->
    if Filename.check_suffix path ".cmt" then path :: acc else acc
  | exception Sys_error _ -> acc

let discover roots =
  List.sort compare (List.fold_left walk [] roots)

let load path =
  match Cmt_format.read_cmt path with
  | exception exn ->
    Error
      (Printf.sprintf "%s: %s" path
         (match exn with
         | Sys_error msg -> msg
         | Cmi_format.Error _ | Failure _ ->
           "not a cmt file from this compiler"
         | exn -> Printexc.to_string exn))
  | cmt -> (
    let source = Option.value ~default:"" cmt.Cmt_format.cmt_sourcefile in
    (* dune's wrapped-library alias units are generated (`foo.ml-gen`);
       they contain no user code and would only add noise *)
    if Filename.check_suffix source "-gen" then Ok None
    else
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation structure ->
        Ok
          (Some
             {
               modname = cmt.Cmt_format.cmt_modname;
               source =
                 (if source = "" then Filename.basename path else source);
               imports = List.map fst cmt.Cmt_format.cmt_imports;
               structure;
               cmt_path = path;
             })
      | _ -> Ok None)

let load_all c paths =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun path ->
      match load path with
      | Error msg ->
        Diagnostic.emitf c ~file:path ~rule:"ANA002" Diagnostic.Warning
          "cannot read typed tree: %s" msg;
        None
      | Ok None -> None
      | Ok (Some info) ->
        if Hashtbl.mem seen info.modname then None
        else begin
          Hashtbl.add seen info.modname ();
          Some info
        end)
    paths
