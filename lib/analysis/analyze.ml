module Diagnostic = Tsg_util.Diagnostic
module Registry = Diagnostic.Registry

(* ------------------------------------------------------------------ *)
(* Name normalization.

   Typed trees record resolved [Path.t]s, but the same function shows up
   under several spellings: ["Stdlib.Hashtbl.create"] under the default
   open, ["Tsg_util__Pool.run"] through dune's wrapped-library mangling,
   and ["Pool.run"] through a local [module Pool = Tsg_util.Pool] alias.
   Every matcher below works on one canonical spelling: local aliases
   resolved, ["__"] turned into ["."], the ["Stdlib."] prefix dropped. *)

let replace_dunder s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let strip_stdlib s =
  let prefix = "Stdlib." in
  let pl = String.length prefix in
  if String.length s > pl && String.sub s 0 pl = prefix then
    String.sub s pl (String.length s - pl)
  else s

let resolve_aliases aliases name =
  let rec go fuel name =
    if fuel = 0 then name
    else
      let head, rest =
        match String.index_opt name '.' with
        | Some i ->
          (String.sub name 0 i, String.sub name i (String.length name - i))
        | None -> (name, "")
      in
      match List.assoc_opt head aliases with
      | Some target -> go (fuel - 1) (target ^ rest)
      | None -> name
  in
  go 5 name

let normalize aliases path =
  strip_stdlib (replace_dunder (resolve_aliases aliases (Path.name path)))

(* ------------------------------------------------------------------ *)
(* Matcher vocabularies (canonical spellings). *)

let container_ctors =
  [
    ("Hashtbl.create", "Hashtbl.t");
    ("Queue.create", "Queue.t");
    ("Buffer.create", "Buffer.t");
    ("ref", "ref");
  ]

let container_tycons = [ "Hashtbl.t"; "Queue.t"; "Buffer.t"; "ref" ]

let scheduler_fns =
  [
    "Tsg_util.Pool.Exec.run";
    "Tsg_util.Pool.Exec.run_supervised";
    "Tsg_util.Pool.fork";
    "Domain.spawn";
    "Thread.create";
  ]

let lock_fns = [ "Mutex.lock"; "Mutex.try_lock"; "Mutex.protect" ]

let lazy_fns =
  [
    "Lazy.force";
    "Lazy.force_val";
    "Lazy.from_fun";
    "Lazy.map";
    "Lazy.map_val";
    "CamlinternalLazy.force";
  ]

let hashtbl_iterators = [ "Hashtbl.iter"; "Hashtbl.fold" ]

let output_sinks =
  [
    "Buffer.add_string";
    "Buffer.add_char";
    "Buffer.add_substring";
    "Buffer.add_bytes";
    "Buffer.add_buffer";
    "output_string";
    "output_char";
    "output_bytes";
    "output";
    "print_string";
    "print_endline";
    "print_char";
    "prerr_string";
    "prerr_endline";
    "Printf.printf";
    "Printf.eprintf";
    "Printf.fprintf";
    "Printf.bprintf";
    "Format.printf";
    "Format.eprintf";
    "Format.fprintf";
    "Format.pp_print_string";
  ]

let open_out_fns = [ "open_out"; "open_out_bin"; "open_out_gen" ]

let string_comparisons = [ "="; "<>"; "String.equal" ]

let is_upper c = c >= 'A' && c <= 'Z'

let is_digit c = c >= '0' && c <= '9'

(* e.g. "TAX005", "X001", "POOL001": 1-6 capitals then exactly 3 digits *)
let rule_shaped s =
  let n = String.length s in
  n >= 4 && n <= 9
  && is_digit s.[n - 1]
  && is_digit s.[n - 2]
  && is_digit s.[n - 3]
  && (not (is_digit s.[n - 4]))
  &&
  let ok = ref true in
  for i = 0 to n - 4 do
    if not (is_upper s.[i]) then ok := false
  done;
  !ok

(* e.g. "OVERLOADED": all capitals, no digits *)
let protocol_shaped s =
  let n = String.length s in
  n >= 3 && n <= 12
  &&
  let ok = ref true in
  String.iter (fun c -> if not (is_upper c) then ok := false) s;
  !ok

(* ------------------------------------------------------------------ *)
(* Per-unit facts (pass 1). *)

type kind = Container of string | Mutex | Atomic | Plain

type binding = {
  b_id : Ident.t option;
  b_name : string;
  b_loc : Location.t;
  b_kind : kind;
  mutable b_refs : Ident.t list;  (* same-unit toplevel values referenced *)
  mutable b_takes_lock : bool;  (* calls Mutex.lock/try_lock/protect *)
}

type suppression = {
  s_code : string;
  s_scope : Location.t option;  (* [None]: the whole unit *)
  mutable s_used : bool;
}

type facts = {
  f_unit : Cmt_load.unit_info;
  f_aliases : (string * string) list;
  f_bindings : binding list;
  f_suppressions : suppression list;
  mutable f_schedules : bool;
}

type allow_entry = { al_rule : string; al_file : string; al_ident : string }

type summary = { units : int; suppressed : int; allowlisted : int }

type finding = {
  fi_rule : string;
  fi_loc : Location.t;
  fi_context : string;
  fi_msg : string;
}

let loc_file unit_source (loc : Location.t) =
  match loc.loc_start.pos_fname with
  | "" | "_none_" -> unit_source
  | f -> f

let loc_line (loc : Location.t) = loc.loc_start.pos_lnum

(* [@tsg.allow "CODE" "justification"] — justification mandatory *)
let parse_allow_payload (attr : Parsetree.attribute) =
  let string_of (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> Some s
    | _ -> None
  in
  match attr.attr_payload with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
    match e.pexp_desc with
    | Pexp_apply (code_e, [ (Asttypes.Nolabel, just_e) ]) -> (
      match (string_of code_e, string_of just_e) with
      | Some code, Some justification -> Ok (code, justification)
      | _ -> Error "expected two string literals: a code and a justification")
    | Pexp_constant (Pconst_string (code, _, _)) ->
      Error
        (Printf.sprintf "suppression of %S lacks a justification string" code)
    | _ -> Error "expected [@tsg.allow \"CODE\" \"justification\"]")
  | _ -> Error "expected [@tsg.allow \"CODE\" \"justification\"]"

let gather_facts c unit_info =
  let structure = unit_info.Cmt_load.structure in
  let suppressions = ref [] in
  let ana_findings = ref [] in
  let add_suppression ~scope (attr : Parsetree.attribute) =
    if attr.attr_name.txt = "tsg.allow" then
      match parse_allow_payload attr with
      | Ok (code, justification) ->
        if not (Registry.is_rule code) then
          ana_findings :=
            {
              fi_rule = "ANA001";
              fi_loc = attr.attr_loc;
              fi_context = "-";
              fi_msg =
                Printf.sprintf "tsg.allow names unknown rule code %S" code;
            }
            :: !ana_findings
        else if String.trim justification = "" then
          ana_findings :=
            {
              fi_rule = "ANA001";
              fi_loc = attr.attr_loc;
              fi_context = "-";
              fi_msg =
                Printf.sprintf "tsg.allow %s has an empty justification" code;
            }
            :: !ana_findings
        else
          suppressions :=
            { s_code = code; s_scope = scope; s_used = false } :: !suppressions
      | Error msg ->
        ana_findings :=
          {
            fi_rule = "ANA001";
            fi_loc = attr.attr_loc;
            fi_context = "-";
            fi_msg = msg;
          }
          :: !ana_findings
  in
  (* local module aliases, for path normalization *)
  let aliases =
    List.filter_map
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_module
            {
              mb_name = { txt = Some name; _ };
              mb_expr = { mod_desc = Tmod_ident (path, _); _ };
              _;
            } ->
          Some (name, replace_dunder (Path.name path))
        | _ -> None)
      structure.str_items
  in
  let norm path = normalize aliases path in
  let facts =
    {
      f_unit = unit_info;
      f_aliases = aliases;
      f_bindings = [];
      f_suppressions = [];
      f_schedules = false;
    }
  in
  (* enumerate toplevel bindings first, so reference walks can filter
     against the complete ident set *)
  let classify (vb : Typedtree.value_binding) =
    let rec head_of (e : Typedtree.expression) =
      match e.exp_desc with
      | Texp_apply (f, _) -> head_of f
      | Texp_ident (p, _, _) -> Some (norm p)
      | _ -> None
    in
    let ctor_kind =
      match head_of vb.vb_expr with
      | Some "Mutex.create" -> Some Mutex
      | Some "Atomic.make" -> Some Atomic
      | Some h -> (
        match List.assoc_opt h container_ctors with
        | Some tycon -> Some (Container tycon)
        | None -> None)
      | None -> None
    in
    match ctor_kind with
    | Some k -> k
    | None -> (
      match Types.get_desc vb.vb_expr.exp_type with
      | Tconstr (p, _, _) -> (
        match norm p with
        | "Mutex.t" -> Mutex
        | "Atomic.t" -> Atomic
        | tycon when List.mem tycon container_tycons -> Container tycon
        | _ -> Plain)
      | _ -> Plain)
  in
  let binding_of_pat (pat : Typedtree.pattern) =
    match pat.pat_desc with
    | Tpat_var (id, name) -> (Some id, name.txt)
    (* [let x : t = e] elaborates to an alias pattern *)
    | Tpat_alias (_, id, name) -> (Some id, name.txt)
    | _ -> (None, "_")
  in
  let bindings = ref [] in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let b_id, b_name = binding_of_pat vb.vb_pat in
            bindings :=
              {
                b_id;
                b_name;
                b_loc = vb.vb_loc;
                b_kind = classify vb;
                b_refs = [];
                b_takes_lock = false;
              }
              :: !bindings)
          vbs
      | Tstr_module mb ->
        bindings :=
          {
            b_id = None;
            b_name =
              Option.value ~default:"_" mb.mb_name.txt;
            b_loc = mb.mb_loc;
            b_kind = Plain;
            b_refs = [];
            b_takes_lock = false;
          }
          :: !bindings
      | Tstr_eval (_, _) ->
        bindings :=
          {
            b_id = None;
            b_name = "-";
            b_loc = item.str_loc;
            b_kind = Plain;
            b_refs = [];
            b_takes_lock = false;
          }
          :: !bindings
      | _ -> ())
    structure.str_items;
  let bindings = List.rev !bindings in
  let toplevel_ids = List.filter_map (fun b -> b.b_id) bindings in
  (* reference walk for one binding's body *)
  let walk_into b =
    let expr sub (e : Typedtree.expression) =
      List.iter (add_suppression ~scope:(Some e.exp_loc)) e.exp_attributes;
      (match e.exp_desc with
      | Texp_ident (Path.Pident id, _, _) ->
        if
          List.exists (fun tid -> Ident.same tid id) toplevel_ids
          && not (List.exists (fun r -> Ident.same r id) b.b_refs)
        then b.b_refs <- id :: b.b_refs
      | Texp_ident (p, _, _) ->
        let n = norm p in
        if List.mem n lock_fns then b.b_takes_lock <- true;
        if List.mem n scheduler_fns then facts.f_schedules <- true
      | _ -> ());
      Tast_iterator.default_iterator.expr sub e
    in
    { Tast_iterator.default_iterator with expr }
  in
  let item_bindings = ref bindings in
  let next_binding () =
    match !item_bindings with
    | b :: rest ->
      item_bindings := rest;
      b
    | [] ->
      (* cannot happen: enumeration and walk cover the same items *)
      assert false
  in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let b = next_binding () in
            List.iter (add_suppression ~scope:(Some vb.vb_loc)) vb.vb_attributes;
            let it = walk_into b in
            it.expr it vb.vb_expr)
          vbs
      | Tstr_module mb ->
        let b = next_binding () in
        let it = walk_into b in
        it.module_expr it mb.mb_expr
      | Tstr_eval (e, attrs) ->
        let b = next_binding () in
        List.iter (add_suppression ~scope:(Some item.str_loc)) attrs;
        let it = walk_into b in
        it.expr it e
      | Tstr_attribute attr -> add_suppression ~scope:None attr
      | Tstr_include incl ->
        let b =
          {
            b_id = None;
            b_name = "-";
            b_loc = item.str_loc;
            b_kind = Plain;
            b_refs = [];
            b_takes_lock = false;
          }
        in
        let it = walk_into b in
        it.module_expr it incl.incl_mod
      | _ -> ())
    structure.str_items;
  ignore c;
  ( { facts with f_bindings = bindings; f_suppressions = !suppressions },
    !ana_findings )

(* ------------------------------------------------------------------ *)
(* Cross-module taint (pass 2): a module that schedules work on domains
   taints everything it imports, transitively — anything a scheduling
   module depends on can run inside a pool task. *)

let tainted_units facts_list =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (f, _) -> Hashtbl.replace by_name f.f_unit.Cmt_load.modname f)
    facts_list;
  let tainted = Hashtbl.create 64 in
  let rec taint name =
    if not (Hashtbl.mem tainted name) then begin
      Hashtbl.replace tainted name ();
      match Hashtbl.find_opt by_name name with
      | Some f -> List.iter taint f.f_unit.Cmt_load.imports
      | None -> ()
    end
  in
  List.iter
    (fun (f, _) -> if f.f_schedules then taint f.f_unit.Cmt_load.modname)
    facts_list;
  if Sys.getenv_opt "TSG_ANALYZE_DEBUG" <> None then begin
    List.iter
      (fun (f, _) ->
        if f.f_schedules then
          Printf.eprintf "debug: scheduler: %s\n" f.f_unit.Cmt_load.modname)
      facts_list;
    List.iter
      (fun (f, _) ->
        let name = f.f_unit.Cmt_load.modname in
        if Hashtbl.mem tainted name then
          Printf.eprintf "debug: tainted: %s\n" name)
      facts_list;
    Printf.eprintf "debug: tainted %d/%d units\n" (Hashtbl.length tainted)
      (List.length facts_list)
  end;
  fun name -> Hashtbl.mem tainted name

(* ------------------------------------------------------------------ *)
(* Findings (pass 3). *)

let dom001_findings facts =
  let bindings = facts.f_bindings in
  let mutexes =
    List.filter_map
      (fun b -> if b.b_kind = Mutex then b.b_id else None)
      bindings
  in
  (* one-level lock wrappers: [let locked f = Mutex.lock lock; ...] *)
  let wrappers =
    List.filter_map
      (fun b ->
        if
          b.b_takes_lock
          && List.exists
               (fun r -> List.exists (fun m -> Ident.same m r) mutexes)
               b.b_refs
        then b.b_id
        else None)
      bindings
  in
  let guards = mutexes @ wrappers in
  if Sys.getenv_opt "TSG_ANALYZE_DEBUG" <> None then
    Printf.eprintf
      "debug: dom001 %s: %d bindings, %d mutexes, %d wrappers, containers: %s\n"
      facts.f_unit.Cmt_load.modname (List.length bindings)
      (List.length mutexes) (List.length wrappers)
      (String.concat ","
         (List.filter_map
            (fun b ->
              match b.b_kind with Container _ -> Some b.b_name | _ -> None)
            bindings));
  let guarded b =
    b.b_takes_lock
    || List.exists
         (fun r -> List.exists (fun g -> Ident.same g r) guards)
         b.b_refs
  in
  List.concat_map
    (fun container ->
      match (container.b_kind, container.b_id) with
      | Container tycon, Some cid ->
        if mutexes = [] then
          [
            {
              fi_rule = "DOM001";
              fi_loc = container.b_loc;
              fi_context = container.b_name;
              fi_msg =
                Printf.sprintf
                  "toplevel mutable state %S (%s) in a domain-executed \
                   module, and no Mutex in this module to guard it"
                  container.b_name tycon;
            };
          ]
        else
          List.filter_map
            (fun accessor ->
              if
                accessor.b_id <> container.b_id
                && List.exists (fun r -> Ident.same r cid) accessor.b_refs
                && not (guarded accessor)
              then
                Some
                  {
                    fi_rule = "DOM001";
                    fi_loc = accessor.b_loc;
                    fi_context = accessor.b_name;
                    fi_msg =
                      Printf.sprintf
                        "%S accesses toplevel mutable %S (%s) without \
                         holding a mutex"
                        accessor.b_name container.b_name tycon;
                  }
              else None)
            bindings
      | _ -> [])
    bindings

let walk_findings ~tainted facts =
  let unit_info = facts.f_unit in
  let source_base = Filename.basename unit_info.Cmt_load.source in
  let norm path = normalize facts.f_aliases path in
  let findings = ref [] in
  let context = ref [ "-" ] in
  let here () = List.hd !context in
  let add fi_rule fi_loc fmt =
    Printf.ksprintf
      (fun fi_msg ->
        findings := { fi_rule; fi_loc; fi_context = here (); fi_msg } :: !findings)
      fmt
  in
  let head_of (e : Typedtree.expression) =
    match e.exp_desc with Texp_ident (p, _, _) -> Some (norm p) | _ -> None
  in
  let mentions_sink (e : Typedtree.expression) =
    let found = ref false in
    let expr sub (e : Typedtree.expression) =
      (match e.exp_desc with
      | Texp_ident (p, _, _) when List.mem (norm p) output_sinks ->
        found := true
      | _ -> ());
      if not !found then Tast_iterator.default_iterator.expr sub e
    in
    let it = { Tast_iterator.default_iterator with expr } in
    it.expr it e;
    !found
  in
  let check_string_const loc s ~in_pattern_or_cmp =
    if rule_shaped s && not (Registry.is_rule s) then
      add "REG001" loc
        "rule code %S is not in Diagnostic.Registry.rules — register it \
         or rename it"
        s
    else if
      in_pattern_or_cmp && protocol_shaped s
      && (not (Registry.is_protocol_error s))
      && not (Registry.is_rule s)
    then
      add "REG001" loc
        "protocol error code %S is not in \
         Diagnostic.Registry.protocol_errors"
        s
  in
  let on_expr (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> (
      let n = norm p in
      if tainted && List.mem n lazy_fns then
        add "DOM002" e.exp_loc
          "%s in domain-executed code: OCaml 5 lazy blocks are not \
           domain-safe (compute eagerly or guard explicitly)"
          n;
      if
        String.length n > 7
        && String.sub n 0 7 = "Random."
        && ((not (String.length n > 13 && String.sub n 0 13 = "Random.State."))
           || n = "Random.State.make_self_init")
      then
        add "DET002" e.exp_loc
          "%s uses ambient or self-seeded Random state; use Tsg_util.Prng \
           or an explicitly seeded Random.State"
          n;
      if List.mem n open_out_fns && source_base <> "safe_io.ml" then
        add "IO101" e.exp_loc
          "%s bypasses Tsg_util.Safe_io.write_atomic: artifact writes \
           must be atomic (suppress with a justification if this is not \
           an artifact)"
          n)
    | Texp_lazy _ ->
      if tainted then
        add "DOM002" e.exp_loc
          "lazy expression in domain-executed code: OCaml 5 lazy blocks \
           are not domain-safe"
    | Texp_constant (Const_string (s, _, _)) ->
      check_string_const e.exp_loc s ~in_pattern_or_cmp:false
    | Texp_apply (f, args) -> (
      match head_of f with
      | Some h when List.mem h hashtbl_iterators ->
        (* callback that prints directly: hash order becomes output order *)
        List.iter
          (fun (label, arg) ->
            match (label, arg) with
            | Asttypes.Nolabel, Some callback when mentions_sink callback ->
              add "DET001" e.exp_loc
                "%s callback writes straight to an output sink: hash \
                 order leaks into serialized output (collect and sort \
                 first)"
                h
            | _ -> ())
          [ List.nth_opt args 0 |> Option.value ~default:(Asttypes.Nolabel, None) ]
      | Some h when List.mem h output_sinks ->
        (* a Hashtbl fold/iter result fed straight into a sink *)
        List.iter
          (fun (_, arg) ->
            match arg with
            | Some (inner : Typedtree.expression) -> (
              match inner.exp_desc with
              | Texp_apply (g, _) -> (
                match head_of g with
                | Some gh when List.mem gh hashtbl_iterators ->
                  add "DET001" inner.exp_loc
                    "%s result flows into %s without an intervening \
                     sort: hash order leaks into serialized output"
                    gh h
                | _ -> ())
              | _ -> ())
            | None -> ())
          args
      | Some h when List.mem h string_comparisons ->
        List.iter
          (fun (_, arg) ->
            match arg with
            | Some
                ({
                   exp_desc = Texp_constant (Const_string (s, _, _));
                   exp_loc;
                   _;
                 } :
                  Typedtree.expression) ->
              check_string_const exp_loc s ~in_pattern_or_cmp:true
            | _ -> ())
          args
      | _ -> ())
    | _ -> ()
  in
  let expr sub (e : Typedtree.expression) =
    on_expr e;
    Tast_iterator.default_iterator.expr sub e
  in
  let pat (type k) sub (p : k Typedtree.general_pattern) =
    (match p.pat_desc with
    | Typedtree.Tpat_lazy _ ->
      if tainted then
        add "DOM002" p.pat_loc
          "lazy pattern in domain-executed code: OCaml 5 lazy blocks are \
           not domain-safe"
    | Typedtree.Tpat_constant (Const_string (s, _, _)) ->
      check_string_const p.pat_loc s ~in_pattern_or_cmp:true
    | _ -> ());
    Tast_iterator.default_iterator.pat sub p
  in
  let structure_item sub (item : Typedtree.structure_item) =
    let name =
      match item.str_desc with
      | Tstr_value
          (_, { vb_pat = { pat_desc = Tpat_var (_, n) | Tpat_alias (_, _, n); _ }; _ }
             :: _) ->
        n.txt
      | Tstr_module { mb_name = { txt = Some n; _ }; _ } -> n
      | _ -> "-"
    in
    context := name :: !context;
    Tast_iterator.default_iterator.structure_item sub item;
    context := List.tl !context
  in
  let it =
    { Tast_iterator.default_iterator with expr; pat; structure_item }
  in
  it.structure it unit_info.Cmt_load.structure;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Suppression, allowlist, emission. *)

let covers (scope : Location.t option) (fi : finding) =
  match scope with
  | None -> true (* whole-unit [\[@@@tsg.allow\]] *)
  | Some scope ->
    scope.loc_start.pos_cnum <= fi.fi_loc.loc_start.pos_cnum
    && fi.fi_loc.loc_end.pos_cnum <= scope.loc_end.pos_cnum

let parse_allowlist path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let entries = ref [] in
        let lineno = ref 0 in
        let bad = ref None in
        (try
           while true do
             let line = input_line ic in
             incr lineno;
             let line =
               match String.index_opt line '#' with
               | Some i -> String.sub line 0 i
               | None -> line
             in
             let fields =
               String.split_on_char ' '
                 (String.map (fun c -> if c = '\t' then ' ' else c) line)
               |> List.filter (fun s -> s <> "")
             in
             match fields with
             | [] -> ()
             | [ al_rule; al_file; al_ident ] ->
               entries := { al_rule; al_file; al_ident } :: !entries
             | _ ->
               if !bad = None then
                 bad :=
                   Some
                     (Printf.sprintf
                        "%s:%d: expected 'RULE FILE IDENT' (got %d fields)"
                        path !lineno (List.length fields))
           done
         with End_of_file -> ());
        match !bad with
        | Some msg -> Error msg
        | None -> Ok (List.rev !entries))

let run ?rules ?(allowlist = []) ?allowlist_file c units =
  let rule_enabled rule =
    match rules with
    | None -> true
    | Some selected ->
      List.mem rule selected
      || String.starts_with ~prefix:"ANA" rule
  in
  let facts_list = List.map (gather_facts c) units in
  let is_tainted = tainted_units facts_list in
  let allow_used = Hashtbl.create 8 in
  let suppressed = ref 0 in
  let allowlisted = ref 0 in
  let emit_findings facts findings =
    let unit_source = facts.f_unit.Cmt_load.source in
    List.iter
      (fun fi ->
        if rule_enabled fi.fi_rule then begin
          let suppression =
            List.find_opt
              (fun s -> s.s_code = fi.fi_rule && covers s.s_scope fi)
              facts.f_suppressions
          in
          match suppression with
          | Some s ->
            s.s_used <- true;
            incr suppressed
          | None -> (
            let file = loc_file unit_source fi.fi_loc in
            let entry =
              List.find_opt
                (fun a ->
                  a.al_rule = fi.fi_rule
                  && a.al_file = Filename.basename file
                  && (a.al_ident = "-" || a.al_ident = fi.fi_context))
                allowlist
            in
            match entry with
            | Some a ->
              Hashtbl.replace allow_used (a.al_rule, a.al_file, a.al_ident) ();
              incr allowlisted
            | None ->
              let severity =
                match Registry.find fi.fi_rule with
                | Some entry -> entry.Registry.default_severity
                | None -> Diagnostic.Error
              in
              Diagnostic.emitf c ~file ~line:(loc_line fi.fi_loc)
                ~rule:fi.fi_rule severity "%s" fi.fi_msg)
        end)
      findings
  in
  List.iter
    (fun (facts, ana_findings) ->
      let tainted = is_tainted facts.f_unit.Cmt_load.modname in
      let findings =
        ana_findings
        @ (if tainted then dom001_findings facts else [])
        @ walk_findings ~tainted facts
      in
      emit_findings facts findings)
    facts_list;
  List.iter
    (fun a ->
      if not (Hashtbl.mem allow_used (a.al_rule, a.al_file, a.al_ident)) then
        Diagnostic.emitf c ?file:allowlist_file ~rule:"ANA003"
          Diagnostic.Warning
          "allowlist entry '%s %s %s' matched nothing: remove it" a.al_rule
          a.al_file a.al_ident)
    allowlist;
  {
    units = List.length facts_list;
    suppressed = !suppressed;
    allowlisted = !allowlisted;
  }
