(** The query engine: containment, taxonomy-aware label lookup and top-k
    over a {!Store}, with an LRU result cache and {!Tsg_util.Metrics}
    instrumentation.

    [contains] answers "which stored patterns occur in this graph?" — the
    same generalized-subgraph-isomorphism question Taxogram's Step 3
    avoids per specialization, answered here per query: the store's
    inverted indexes prefilter candidates, {!Tsg_iso.Gen_iso} decides the
    survivors, and results are cached under the query graph's minimum DFS
    code so isomorphic repeats skip isomorphism entirely.

    All query functions are safe to call concurrently from multiple
    domains (the cache is mutex-protected; the store and taxonomy are
    immutable). *)

type t

val create :
  ?cache_capacity:int ->
  ?epoch:Epoch.t ->
  metrics:Tsg_util.Metrics.t ->
  Store.t ->
  t
(** [cache_capacity] defaults to 1024 cached result lists; [0] disables
    caching. [epoch] (default {!Epoch.zero}) records which artifact
    version this engine was built from — the serve loop enforces
    [at <epoch>] request pins against it. *)

val store : t -> Store.t

val epoch : t -> Epoch.t
(** The artifact epoch this engine serves. *)

val with_epoch : t -> Epoch.t -> t
(** The same engine (store, cache and metrics shared) under a different
    epoch — how the serve reload path guarantees the recorded epoch
    matches the artifact bytes it just verified, whatever the builder
    did. *)

val metrics : t -> Tsg_util.Metrics.t

(** {1 Queries}

    Results are pattern ids into the store, ascending. *)

val contains : ?use_cache:bool -> t -> Tsg_graph.Graph.t -> int list
(** Every stored pattern generalized-subgraph-isomorphic into the given
    target graph. With [~use_cache:false] (default [true]) the min-DFS-code
    canonicalization and the result cache are skipped entirely — the
    degraded serving mode: identical results, no [cache.*] metric
    movement, no cache mutation. Counters: [contains.queries],
    [cache.hits], [cache.misses], [contains.candidates],
    [contains.iso_tests]; histogram: [latency.contains]. *)

val contains_brute : t -> Tsg_graph.Graph.t -> int list
(** As {!contains} but scanning every stored pattern with
    {!Tsg_iso.Gen_iso} — no prefilter, no cache, no metrics. The test and
    benchmark oracle. *)

val by_label : t -> Tsg_graph.Label.id -> int list
(** Patterns mentioning the label or any taxonomy descendant of it.
    Counter: [by_label.queries]; histogram: [latency.by_label]. *)

val top_k : t -> k:int -> [ `Support | `Interest ] -> (int * float) list
(** Highest-scored [k] patterns with their scores — support fraction or
    {!Tsg_core.Interest} ratio. Counter: [top_k.queries]; histogram:
    [latency.top_k].
    @raise Failure for [`Interest] when the store was built without its
    originating database. *)

val cache_key : Tsg_graph.Graph.t -> string
(** The cache key used by {!contains}: the canonical minimum DFS code for
    connected graphs (isomorphism-invariant), a structural rendering
    otherwise. *)

val cache_hit_rate : t -> float
