(** The newline-delimited text protocol served by [tsg-serve].

    One request per line:
    {v
    contains <l0,l1,...> [<u-v[/elabel],...>]   patterns occurring in the graph
    by-label <label>                            patterns mentioning the label or a descendant
    top-k <k> support|interest                  highest-scored patterns
    stats                                       metrics snapshot
    health                                      liveness probe (pattern count + uptime)
    quit                                        stop serving
    v}

    A [contains] graph lists its node labels by name (node [i] gets the
    [i]-th label) and its edges as [u-v] or [u-v/name] pairs; an edgeless
    graph omits the edge list or writes [-]. Blank lines and lines
    starting with [#] are ignored. Node labels must be taxonomy concepts;
    edge-label names are interned on sight (an unseen edge label simply
    matches no stored pattern). Label names must not contain whitespace,
    [,], [-] or [/] (true of every taxonomy file — see
    {!Tsg_taxonomy.Taxonomy_io}). *)

type query =
  | Contains of Tsg_graph.Graph.t
  | By_label of Tsg_graph.Label.id
  | Top_k of int * [ `Support | `Interest ]
  | Stats
  | Health
  | Quit

exception Parse_error of string

val default_max_line_bytes : int
(** 65536 — the request-size bound {!parse} (and the serve loop's
    bounded reader) applies unless told otherwise. *)

val parse :
  ?max_bytes:int ->
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  edge_labels:Tsg_graph.Label.t ->
  string ->
  query option
(** [None] for blank lines and comments.
    @raise Parse_error on malformed requests, unknown commands, node
    labels that are not taxonomy concepts, or lines longer than
    [max_bytes] (default {!default_max_line_bytes}). *)

val format_graph :
  names:Tsg_graph.Label.t ->
  edge_labels:Tsg_graph.Label.t ->
  Tsg_graph.Graph.t ->
  string
(** The [<labels> <edges>] spelling of a graph, parseable back by
    {!parse} as the argument of [contains]. *)
