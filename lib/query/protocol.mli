(** The newline-delimited text protocol served by [tsg-serve].

    One request per line:
    {v
    contains <l0,l1,...> [<u-v[/elabel],...>]   patterns occurring in the graph
    by-label <label>                            patterns mentioning the label or a descendant
    top-k <k> support|interest                  highest-scored patterns
    stats                                       metrics snapshot
    health                                      liveness probe (patterns, uptime, checksum, epoch, load)
    epoch                                       the serving artifact epoch ({!Epoch})
    reload                                      hot-swap the pattern artifact (TCP mode)
    prepare                                     stage + verify the on-disk artifact (two-phase reload)
    commit                                      atomically swap in the staged artifact
    abort                                       drop the staged artifact
    quit                                        stop serving
    v}

    A data query may additionally be pinned to an artifact epoch:
    [at <epoch> <request>] (after the [id] tag if both are present).
    A server whose serving epoch differs answers
    [error STALE_EPOCH serving <cur> wanted <req>] instead of computing
    a possibly-inconsistent answer — the mechanism the cluster router
    uses to make mixed-epoch merges impossible.

    Failures answer a single line [error <CODE> <message>] where [CODE]
    is one of the stable machine-readable {!error_code} spellings —
    clients should dispatch on the code and treat the message as free
    text. (Compat note: before the error-code scheme the code token was
    absent; clients that only check the [error] prefix keep working.)

    A [contains] graph lists its node labels by name (node [i] gets the
    [i]-th label) and its edges as [u-v] or [u-v/name] pairs; an edgeless
    graph omits the edge list or writes [-]. Blank lines and lines
    starting with [#] are ignored. Node labels must be taxonomy concepts;
    edge-label names are interned on sight (an unseen edge label simply
    matches no stored pattern). Label names must not contain whitespace,
    [,], [-] or [/] (true of every taxonomy file — see
    {!Tsg_taxonomy.Taxonomy_io}). *)

type query =
  | Contains of Tsg_graph.Graph.t
  | By_label of Tsg_graph.Label.id
  | Top_k of int * [ `Support | `Interest ]
  | Stats
  | Health
  | Epoch_info
  | Reload
  | Prepare
  | Commit
  | Abort
  | Quit

(** {1 Error codes}

    The stable catalog of machine-readable failure classes:
    - [Badreq] — malformed or unknown request;
    - [Oversized] — request line exceeded the size bound;
    - [Deadline] — execution blew the per-request deadline;
    - [Overloaded] — shed by admission control; the message carries
      [retry-after <seconds>];
    - [Unavailable] — the verb needs state this server lacks (top-k by
      interest without a database; [reload] when not enabled);
    - [Fault] — an injected failpoint fired ({!Tsg_util.Fault});
    - [Internal] — unexpected exception; the request died, the server
      did not;
    - [Reload_failed] — a [reload]/[prepare]/[commit] was attempted and
      rolled back;
    - [Stale_epoch] — the request was pinned ([at <epoch>]) to an epoch
      this server is not serving; the answer would have been
      version-inconsistent, so none was computed. *)

type error_code =
  | Badreq
  | Oversized
  | Deadline
  | Overloaded
  | Unavailable
  | Fault
  | Internal
  | Reload_failed
  | Stale_epoch

val code_string : error_code -> string
(** The wire spelling, e.g. [OVERLOADED]. *)

val error_line : error_code -> string -> string
(** [error_line code msg] is ["error <CODE> <msg>"]. *)

exception Parse_error of string

val default_max_line_bytes : int
(** 65536 — the request-size bound {!parse} (and the serve loop's
    bounded reader) applies unless told otherwise. *)

(** {1 Request ids}

    Any request line may carry a client-chosen tag: [id <token> <request>]
    where [<token>] is a single whitespace-free word. The server prefixes
    the first line of the reply with the same [id <token> ] marker and,
    for data queries, flushes the reply immediately instead of batching
    until the next barrier verb — tags exist so pipelined and hedged
    clients (the cluster router) can match replies to requests on a
    shared connection and discard stale ones. Untagged requests behave
    exactly as before. *)

val split_tag : string -> string option * string
(** [split_tag line] is [(Some token, rest)] when [line] is
    [id <token> <rest>], and [(None, line)] otherwise (the line comes
    back trimmed in both cases). Never raises: a bare [id] with no
    request is returned untagged and left for {!parse} to reject. *)

val tag_reply : string option -> string -> string
(** [tag_reply (Some t) reply] prefixes [reply] with [id t ];
    [tag_reply None reply] is [reply]. Apply to the first line of a
    reply block only. *)

val split_at : string -> string option * string
(** [split_at body] is [(Some epoch, rest)] when [body] is
    [at <epoch> <rest>] (the epoch pin — apply {e after} {!split_tag}),
    and [(None, body)] otherwise. The epoch token is returned unparsed;
    {!Epoch.of_string} decides validity. *)

val parse :
  ?max_bytes:int ->
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  edge_labels:Tsg_graph.Label.t ->
  string ->
  query option
(** [None] for blank lines and comments.
    @raise Parse_error on malformed requests, unknown commands, node
    labels that are not taxonomy concepts, or lines longer than
    [max_bytes] (default {!default_max_line_bytes}). *)

val format_graph :
  names:Tsg_graph.Label.t ->
  edge_labels:Tsg_graph.Label.t ->
  Tsg_graph.Graph.t ->
  string
(** The [<labels> <edges>] spelling of a graph, parseable back by
    {!parse} as the argument of [contains]. *)
