module Checksum = Tsg_util.Checksum

type t = { seq : int64; sum : int64 }

let zero = { seq = 0L; sum = 0L }

let make ~seq ~sum = { seq; sum }

let seq t = t.seq

let sum t = t.sum

let compare a b =
  let c = Int64.compare a.seq b.seq in
  if c <> 0 then c else Int64.compare a.sum b.sum

let equal a b = compare a b = 0

let to_string t = Printf.sprintf "%Ld.%016Lx" t.seq t.sum

let of_string s =
  match String.index_opt s '.' with
  | None -> None
  | Some i -> (
    let seq = String.sub s 0 i in
    let sum = String.sub s (i + 1) (String.length s - i - 1) in
    match (Int64.of_string_opt seq, Int64.of_string_opt ("0x" ^ sum)) with
    | Some seq, Some sum -> Some { seq; sum }
    | _ -> None)

(* --- artifact contents ------------------------------------------------- *)

let contents_sum contents =
  List.fold_left
    (fun acc s -> Checksum.mix64 acc (Checksum.fnv1a64 s))
    (Checksum.fnv1a64 "")
    contents

(* --- stamp lines -------------------------------------------------------- *)

(* A stamped artifact starts with [# epoch <seq> <payload-hex>] where the
   hex fingerprints everything after the stamp line. The '#' comment
   syntax is already skipped by every pattern/taxonomy/db parser, so a
   stamp is invisible to readers that predate it. *)

let stamp_prefix = "# epoch "

let has_stamp content =
  String.length content >= String.length stamp_prefix
  && String.sub content 0 (String.length stamp_prefix) = stamp_prefix

let split_stamp content =
  if not (has_stamp content) then None
  else
    let line, payload =
      match String.index_opt content '\n' with
      | None -> (content, "")
      | Some i ->
        ( String.sub content 0 i,
          String.sub content (i + 1) (String.length content - i - 1) )
    in
    match String.split_on_char ' ' line with
    | [ "#"; "epoch"; seq; hex ] -> (
      match (Int64.of_string_opt seq, Int64.of_string_opt ("0x" ^ hex)) with
      | Some seq, Some hex -> Some (seq, hex, payload)
      | _ -> None)
    | _ -> None

let stamp ~seq content =
  Printf.sprintf "%s%Ld %016Lx\n%s" stamp_prefix seq
    (Checksum.fnv1a64 content)
    content

let stamp_seq content =
  match split_stamp content with Some (seq, _, _) -> Some seq | None -> None

let payload content =
  match split_stamp content with
  | Some (_, _, payload) -> payload
  | None -> content

let verify_stamp content =
  if not (has_stamp content) then Ok ()
  else
    match split_stamp content with
    | None -> Error "malformed epoch stamp line"
    | Some (seq, hex, payload) ->
      let actual = Checksum.fnv1a64 payload in
      if Int64.equal actual hex then Ok ()
      else
        Error
          (Printf.sprintf
             "epoch stamp (seq %Ld) fingerprints %016Lx but the payload \
              hashes to %016Lx — artifact corrupt or spliced"
             seq hex actual)

let of_sources sources =
  let seq =
    List.fold_left
      (fun acc (_, content) ->
        match stamp_seq content with
        | Some s when Int64.compare s acc > 0 -> s
        | _ -> acc)
      0L sources
  in
  { seq; sum = contents_sum (List.map snd sources) }
