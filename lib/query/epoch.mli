(** Artifact epochs: the version identity a serving cluster agrees on.

    An epoch is a pair [(seq, sum)]: a monotone sequence number (the
    pipeline's WAL watermark — {!Tsg_pipeline}'s [Incremental.mined_seq]
    — or [0] for artifacts published outside the pipeline) and the
    content checksum of the artifact set ({!contents_sum}, the same
    FNV-1a64 fold [Serve] reports from [health]). Two replicas serve the
    same answers iff they serve the same epoch; the router refuses to
    merge across different ones ([STALE_EPOCH]).

    {b Stamps.} [tsg-pipe] prepends one comment line to each published
    artifact: [# epoch <seq> <payload-hex>], where the hex fingerprints
    the bytes after the stamp line. Every existing parser already skips
    ['#'] comment lines, so stamped artifacts stay readable by older
    tools; {!verify_stamp} lets a loader detect a spliced or corrupt
    payload before serving it. Unstamped artifacts get [seq = 0] — the
    checksum half still distinguishes versions. *)

type t = { seq : int64; sum : int64 }

val zero : t
(** [(0, 0)] — the epoch of an engine built without artifact files. *)

val make : seq:int64 -> sum:int64 -> t

val seq : t -> int64

val sum : t -> int64

val compare : t -> t -> int
(** Lexicographic on [(seq, sum)]: the pipeline's WAL watermark decides
    "newer"; the checksum only breaks ties between out-of-band edits. *)

val equal : t -> t -> bool

val to_string : t -> string
(** ["<seq>.<sum as 16 hex digits>"] — the wire spelling used by the
    [epoch]/[health] verbs and the [at <epoch>] request pin. *)

val of_string : string -> t option

val contents_sum : string list -> int64
(** Order-sensitive FNV-1a64 fold over file contents — the artifact
    checksum ([Serve.checksum_strings] delegates here). *)

val stamp : seq:int64 -> string -> string
(** Prepend [# epoch <seq> <hex>] fingerprinting [content]. *)

val has_stamp : string -> bool

val stamp_seq : string -> int64 option
(** The sequence number of a well-formed leading stamp, if any. *)

val payload : string -> string
(** Content with a well-formed leading stamp removed; identity for
    unstamped (or malformed) content. The delta-equivalence property
    compares payloads: equal pattern sets render equal {e payloads}
    whatever watermark each publisher stamped. *)

val verify_stamp : string -> (unit, string) result
(** [Ok ()] for unstamped content or a stamp whose fingerprint matches
    the payload; [Error msg] for a malformed stamp or a payload that
    hashes differently (rule [EPO002] at the call sites). *)

val of_sources : (string * string) list -> t
(** The epoch of an artifact set given as [(path, contents)] pairs:
    [seq] is the largest stamp sequence across the files ([0] when none
    is stamped), [sum] is {!contents_sum} over the full file bytes
    (stamp lines included, so it matches [Serve.checksum_files]). *)
