(** Admission control for the serving path.

    Every request entering {!Serve} passes through an admission gate
    before it is queued for execution. The gate enforces, in order:

    + a bounded queue — when more than [max_queue] admitted requests are
      waiting, new arrivals are shed immediately;
    + a per-client token bucket ([client_rate]/[client_burst]) — each
      connection gets its own bucket, so one chatty client cannot starve
      the rest;
    + a circuit breaker over recent request outcomes — a burst of
      failures opens it and sheds arrivals for a cooldown;
    + a two-level degradation ladder driven by queue depth and the
      observed p99 sojourn time:
      - level 1: [top-k] requests with [k > top_k_cap] are shed, and
        admitted queries run without the min-DFS-code result cache
        (serve from the index only — no canonicalization on miss);
      - level 2: everything but [contains] (and the [health]/[stats]
        barriers, which bypass admission) is shed.

    Admitted requests additionally face CoDel-style deadline shedding at
    dequeue: when a request's queue wait already exceeds
    [queue_deadline_s] by the time a worker picks it up, it is answered
    [error OVERLOADED retry-after <s>] instead of being executed — under
    sustained overload the queue drains by shedding the stale head
    rather than serving every request late.

    All decisions surface as [serve.*] metrics. The clock is injectable
    ({!Tsg_util.Limiter.clock}) so the whole ladder is unit-testable with
    a virtual clock. Thread-safe. *)

type t

type client
(** Per-connection admission state (its token bucket). *)

type config = {
  max_queue : int;  (** bound on admitted-but-unfinished requests *)
  client_rate : float;  (** per-client tokens/s; [0.] disables buckets *)
  client_burst : float;  (** per-client bucket capacity *)
  queue_deadline_s : float;  (** CoDel dequeue deadline; [0.] disables *)
  level1_queue : int;  (** queue depth that enters level 1 *)
  level2_queue : int;  (** queue depth that enters level 2 *)
  level1_p99_s : float;  (** p99 sojourn that enters level 1 *)
  level2_p99_s : float;  (** p99 sojourn that enters level 2 *)
  recover_fraction : float;
      (** hysteresis: step down one level only when depth and p99 are
          below [recover_fraction] of the current level's thresholds *)
  top_k_cap : int;  (** max admitted [k] at degradation level >= 1 *)
  window : int;  (** sojourn-time window size for the p99 estimate *)
  breaker_window : int;
  breaker_min_samples : int;
  breaker_failure_ratio : float;
  breaker_cooldown_s : float;
  ladder : bool;
      (** when [false] the level is pinned at [initial_level] — used by
          tests to compare fixed ladder levels *)
  initial_level : int;
}

val default_config : config
(** [max_queue = 256], [client_rate = 0.], [client_burst = 16.],
    [queue_deadline_s = 0.], [level1_queue = 64], [level2_queue = 192],
    [level1_p99_s = 0.5], [level2_p99_s = 2.0],
    [recover_fraction = 0.5], [top_k_cap = 100], [window = 512],
    breaker [256]/[64]/[0.9]/[1.0], [ladder = true],
    [initial_level = 0]. *)

type kind = Contains | By_label | Top_k of int
(** The admission-relevant shape of a request. [stats]/[health]/[quit]
    are barriers and never pass through admission. *)

type reason = Queue_full | Rate | Deadline | Degraded | Breaker

type ticket
(** An admitted request, from {!admit} to {!finish}. *)

type decision =
  | Admit of ticket
  | Shed of { reason : reason; retry_after_s : float }

val create :
  ?clock:Tsg_util.Limiter.clock ->
  ?config:config ->
  metrics:Tsg_util.Metrics.t ->
  unit ->
  t

val client : t -> client
(** Fresh per-connection state. Serve creates one per TCP connection
    (and one for the whole stream in stdio mode). *)

val admit : t -> client -> kind -> decision
(** Decide a new arrival. [Admit] places the request in the (accounted)
    queue; the caller must eventually call {!start} and {!finish}, or
    {!cancel} if the request is abandoned before execution. *)

val start : t -> ticket -> [ `Run of int | `Expired of float ]
(** Called by the executing worker when it picks the request up.
    [`Run level] means execute (at the given degradation level);
    [`Expired retry_after_s] means the queue wait already exceeded the
    deadline — answer overloaded instead, and do {e not} call
    {!finish}. *)

val finish : t -> ticket -> ok:bool -> unit
(** Report completion of a started request: records the sojourn time in
    the latency window, feeds the breaker, and re-evaluates the
    ladder. *)

val cancel : t -> ticket -> unit
(** Forget an admitted request that will never start (e.g. its
    connection died while it was queued). *)

val level : t -> int
(** Current degradation level: 0, 1 or 2. *)

val in_flight : t -> int
(** Admitted-but-unfinished requests (queued + running). *)

val reason_metric : reason -> string
(** The [serve.shed.*] counter name a reason increments — exposed for
    tests. *)
