module Graph = Tsg_graph.Graph
module Label = Tsg_graph.Label
module Taxonomy = Tsg_taxonomy.Taxonomy

type query =
  | Contains of Graph.t
  | By_label of Label.id
  | Top_k of int * [ `Support | `Interest ]
  | Stats
  | Health
  | Epoch_info
  | Reload
  | Prepare
  | Commit
  | Abort
  | Quit

type error_code =
  | Badreq
  | Oversized
  | Deadline
  | Overloaded
  | Unavailable
  | Fault
  | Internal
  | Reload_failed
  | Stale_epoch

let code_string = function
  | Badreq -> "BADREQ"
  | Oversized -> "OVERSIZED"
  | Deadline -> "DEADLINE"
  | Overloaded -> "OVERLOADED"
  | Unavailable -> "UNAVAILABLE"
  | Fault -> "FAULT"
  | Internal -> "INTERNAL"
  | Reload_failed -> "RELOAD"
  | Stale_epoch -> "STALE_EPOCH"

let error_line code message =
  Printf.sprintf "error %s %s" (code_string code) message

exception Parse_error of string

let default_max_line_bytes = 65536

let split_tag line =
  let line = String.trim line in
  let is_prefixed = String.length line > 3 && String.sub line 0 3 = "id " in
  if not is_prefixed then (None, line)
  else
    let rest = String.sub line 3 (String.length line - 3) in
    match String.index_opt rest ' ' with
    | Some i when i > 0 ->
      ( Some (String.sub rest 0 i),
        String.sub rest (i + 1) (String.length rest - i - 1) )
    | _ -> (None, line)

let tag_reply tag reply =
  match tag with None -> reply | Some t -> "id " ^ t ^ " " ^ reply

(* [at <epoch> <request>] pins a data query to an artifact epoch: the
   server answers [error STALE_EPOCH] instead of computing from any
   other epoch. Parsed after the [id] tag, before the verb, so the
   reply bytes of a pinned query are identical to an unpinned one —
   the cluster merge's byte-identity contract survives pinning. *)
let split_at line =
  let is_prefixed = String.length line > 3 && String.sub line 0 3 = "at " in
  if not is_prefixed then (None, line)
  else
    let rest = String.sub line 3 (String.length line - 3) in
    match String.index_opt rest ' ' with
    | Some i when i > 0 ->
      ( Some (String.sub rest 0 i),
        String.sub rest (i + 1) (String.length rest - i - 1) )
    | _ -> (None, line)

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let split_commas s = String.split_on_char ',' s

let parse_edge ~edge_labels item =
  let endpoints, label =
    match String.index_opt item '/' with
    | None -> (item, 0)
    | Some i ->
      ( String.sub item 0 i,
        Label.intern edge_labels
          (String.sub item (i + 1) (String.length item - i - 1)) )
  in
  match String.split_on_char '-' endpoints with
  | [ u; v ] -> (
    match (int_of_string_opt u, int_of_string_opt v) with
    | Some u, Some v -> (u, v, label)
    | _ -> fail "bad edge endpoints %S" endpoints)
  | _ -> fail "bad edge %S (expected u-v or u-v/label)" item

let parse_graph ~taxonomy ~edge_labels labels_spec edges_spec =
  let labels =
    split_commas labels_spec
    |> List.map (fun name ->
           match Taxonomy.id_of_name taxonomy name with
           | id -> id
           | exception Not_found -> fail "unknown node label %S" name)
    |> Array.of_list
  in
  let edges =
    match edges_spec with
    | None -> []
    | Some "-" -> []
    | Some spec -> List.map (parse_edge ~edge_labels) (split_commas spec)
  in
  try Graph.build ~labels ~edges
  with Invalid_argument msg -> fail "bad graph: %s" msg

let parse ?(max_bytes = default_max_line_bytes) ~taxonomy ~edge_labels line =
  if String.length line > max_bytes then
    fail "request exceeds %d bytes" max_bytes;
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    Some
      (match String.split_on_char ' ' line with
      | [ "contains"; labels ] ->
        Contains (parse_graph ~taxonomy ~edge_labels labels None)
      | [ "contains"; labels; edges ] ->
        Contains (parse_graph ~taxonomy ~edge_labels labels (Some edges))
      | [ "by-label"; name ] -> (
        match Taxonomy.id_of_name taxonomy name with
        | id -> By_label id
        | exception Not_found -> fail "unknown label %S" name)
      | [ "top-k"; k; order ] -> (
        let k =
          match int_of_string_opt k with
          | Some k when k >= 0 -> k
          | _ -> fail "bad top-k count %S" k
        in
        match order with
        | "support" -> Top_k (k, `Support)
        | "interest" -> Top_k (k, `Interest)
        | _ -> fail "bad top-k order %S (expected support or interest)" order)
      | [ "stats" ] -> Stats
      | [ "health" ] -> Health
      | [ "epoch" ] -> Epoch_info
      | [ "reload" ] -> Reload
      | [ "prepare" ] -> Prepare
      | [ "commit" ] -> Commit
      | [ "abort" ] -> Abort
      | [ "quit" ] -> Quit
      | cmd :: _ -> fail "unknown command %S" cmd
      | [] -> fail "empty request")

let format_graph ~names ~edge_labels g =
  let labels =
    List.init (Graph.node_count g) (fun v ->
        Label.name names (Graph.node_label g v))
    |> String.concat ","
  in
  let edges =
    Graph.edges g |> Array.to_list
    |> List.map (fun (u, v, l) ->
           if l = 0 then Printf.sprintf "%d-%d" u v
           else Printf.sprintf "%d-%d/%s" u v (Label.name edge_labels l))
    |> String.concat ","
  in
  labels ^ " " ^ (if edges = "" then "-" else edges)
