module Limiter = Tsg_util.Limiter
module Metrics = Tsg_util.Metrics

type config = {
  max_queue : int;
  client_rate : float;
  client_burst : float;
  queue_deadline_s : float;
  level1_queue : int;
  level2_queue : int;
  level1_p99_s : float;
  level2_p99_s : float;
  recover_fraction : float;
  top_k_cap : int;
  window : int;
  breaker_window : int;
  breaker_min_samples : int;
  breaker_failure_ratio : float;
  breaker_cooldown_s : float;
  ladder : bool;
  initial_level : int;
}

let default_config =
  {
    max_queue = 256;
    client_rate = 0.0;
    client_burst = 16.0;
    queue_deadline_s = 0.0;
    level1_queue = 64;
    level2_queue = 192;
    level1_p99_s = 0.5;
    level2_p99_s = 2.0;
    recover_fraction = 0.5;
    top_k_cap = 100;
    window = 512;
    breaker_window = 256;
    (* a high floor and ratio: the breaker is a backstop against the
       engine itself failing, not a load signal — the 1% injected fault
       rate of the chaos suite must never trip it *)
    breaker_min_samples = 64;
    breaker_failure_ratio = 0.9;
    breaker_cooldown_s = 1.0;
    ladder = true;
    initial_level = 0;
  }

type kind = Contains | By_label | Top_k of int

type reason = Queue_full | Rate | Deadline | Degraded | Breaker

type tk_state = Queued | Running | Done

type ticket = { tk_enqueued : float; mutable tk_state : tk_state }

type decision =
  | Admit of ticket
  | Shed of { reason : reason; retry_after_s : float }

type t = {
  cfg : config;
  clock : Limiter.clock;
  window : Limiter.Window.t;
  breaker : Limiter.Breaker.t;
  lock : Mutex.t;
  mutable queued : int;
  mutable running : int;
  mutable lvl : int;
  (* metrics *)
  m_admitted : Metrics.counter;
  m_shed_queue_full : Metrics.counter;
  m_shed_rate : Metrics.counter;
  m_shed_deadline : Metrics.counter;
  m_shed_degraded : Metrics.counter;
  m_shed_breaker : Metrics.counter;
  m_degrade_up : Metrics.counter;
  m_degrade_down : Metrics.counter;
  g_level : Metrics.gauge;
  g_inflight : Metrics.gauge;
}

type client = { bucket : Limiter.Token_bucket.t option }

let reason_metric = function
  | Queue_full -> "serve.shed.queue_full"
  | Rate -> "serve.shed.rate"
  | Deadline -> "serve.shed.deadline"
  | Degraded -> "serve.shed.degraded"
  | Breaker -> "serve.shed.breaker"

let create ?(clock = Limiter.wall_clock) ?(config = default_config) ~metrics ()
    =
  if config.max_queue < 1 then invalid_arg "Admission.create: max_queue < 1";
  if config.initial_level < 0 || config.initial_level > 2 then
    invalid_arg "Admission.create: initial_level outside [0,2]";
  let t =
    {
      cfg = config;
      clock;
      window = Limiter.Window.create ~capacity:(max 1 config.window);
      breaker =
        Limiter.Breaker.create ~clock ~window:config.breaker_window
          ~min_samples:config.breaker_min_samples
          ~failure_ratio:config.breaker_failure_ratio
          ~cooldown_s:config.breaker_cooldown_s ();
      lock = Mutex.create ();
      queued = 0;
      running = 0;
      lvl = config.initial_level;
      m_admitted = Metrics.counter metrics "serve.admitted";
      m_shed_queue_full = Metrics.counter metrics (reason_metric Queue_full);
      m_shed_rate = Metrics.counter metrics (reason_metric Rate);
      m_shed_deadline = Metrics.counter metrics (reason_metric Deadline);
      m_shed_degraded = Metrics.counter metrics (reason_metric Degraded);
      m_shed_breaker = Metrics.counter metrics (reason_metric Breaker);
      m_degrade_up = Metrics.counter metrics "serve.degrade.up";
      m_degrade_down = Metrics.counter metrics "serve.degrade.down";
      g_level = Metrics.gauge metrics "serve.degrade.level";
      g_inflight = Metrics.gauge metrics "serve.inflight";
    }
  in
  Metrics.set_gauge t.g_level t.lvl;
  t

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let shed_counter t = function
  | Queue_full -> t.m_shed_queue_full
  | Rate -> t.m_shed_rate
  | Deadline -> t.m_shed_deadline
  | Degraded -> t.m_shed_degraded
  | Breaker -> t.m_shed_breaker

(* the level the current depth/p99 call for; [scale < 1.0] shrinks the
   thresholds and is used when checking whether recovery is warranted *)
let wanted t ~scale =
  let depth = float_of_int (t.queued + t.running) in
  let p99 = Limiter.Window.percentile t.window 99.0 in
  if
    depth >= scale *. float_of_int t.cfg.level2_queue
    || p99 >= scale *. t.cfg.level2_p99_s
  then 2
  else if
    depth >= scale *. float_of_int t.cfg.level1_queue
    || p99 >= scale *. t.cfg.level1_p99_s
  then 1
  else 0

(* call under [t.lock]. Escalation is immediate; recovery steps down one
   level at a time and only once both signals are comfortably (by
   [recover_fraction]) below the current level's entry thresholds. *)
let reevaluate t =
  if t.cfg.ladder then begin
    let up = wanted t ~scale:1.0 in
    if up > t.lvl then begin
      t.lvl <- up;
      Metrics.incr t.m_degrade_up;
      Metrics.set_gauge t.g_level t.lvl
    end
    else if
      t.lvl > 0 && wanted t ~scale:t.cfg.recover_fraction < t.lvl
    then begin
      t.lvl <- t.lvl - 1;
      Metrics.incr t.m_degrade_down;
      Metrics.set_gauge t.g_level t.lvl
    end
  end

let client t =
  {
    bucket =
      (if t.cfg.client_rate > 0.0 then
         Some
           (Limiter.Token_bucket.create ~clock:t.clock ~rate:t.cfg.client_rate
              ~burst:t.cfg.client_burst ())
       else None);
  }

let nominal_retry t =
  if t.cfg.queue_deadline_s > 0.0 then t.cfg.queue_deadline_s else 1.0

let shed t reason retry_after_s =
  Metrics.incr (shed_counter t reason);
  Shed { reason; retry_after_s = Float.max 0.0 retry_after_s }

let admit t client kind =
  (* rate and breaker checks take their own locks; keep them outside
     the admission lock *)
  let rate_ok =
    match client.bucket with
    | None -> true
    | Some b -> Limiter.Token_bucket.try_take b
  in
  if not rate_ok then
    let retry =
      match client.bucket with
      | Some b -> Limiter.Token_bucket.retry_after_s b
      | None -> 0.0
    in
    shed t Rate retry
  else if not (Limiter.Breaker.allow t.breaker) then
    shed t Breaker (Limiter.Breaker.retry_after_s t.breaker)
  else
    locked t.lock (fun () ->
        reevaluate t;
        if t.queued + t.running >= t.cfg.max_queue then
          shed t Queue_full (nominal_retry t)
        else
          let degraded =
            match (t.lvl, kind) with
            | 0, _ -> false
            | _, Top_k k when k > t.cfg.top_k_cap -> true
            | 1, _ -> false
            | _, (By_label | Top_k _) -> true
            | _, Contains -> false
          in
          if degraded then shed t Degraded (nominal_retry t)
          else begin
            t.queued <- t.queued + 1;
            Metrics.incr t.m_admitted;
            Metrics.add_gauge t.g_inflight 1;
            Admit { tk_enqueued = t.clock (); tk_state = Queued }
          end)

let start t ticket =
  locked t.lock (fun () ->
      match ticket.tk_state with
      | Running | Done -> `Run t.lvl
      | Queued ->
        let wait = Float.max 0.0 (t.clock () -. ticket.tk_enqueued) in
        if t.cfg.queue_deadline_s > 0.0 && wait > t.cfg.queue_deadline_s
        then begin
          ticket.tk_state <- Done;
          t.queued <- t.queued - 1;
          Metrics.incr t.m_shed_deadline;
          Metrics.add_gauge t.g_inflight (-1);
          (* the stale head still counts as a slow sojourn: overload must
             be visible to the ladder even when every victim is shed *)
          Limiter.Window.observe t.window wait;
          reevaluate t;
          `Expired (nominal_retry t)
        end
        else begin
          ticket.tk_state <- Running;
          t.queued <- t.queued - 1;
          t.running <- t.running + 1;
          `Run t.lvl
        end)

let finish t ticket ~ok =
  let finished =
    locked t.lock (fun () ->
        match ticket.tk_state with
        | Queued | Done -> false
        | Running ->
          ticket.tk_state <- Done;
          t.running <- t.running - 1;
          Metrics.add_gauge t.g_inflight (-1);
          Limiter.Window.observe t.window
            (Float.max 0.0 (t.clock () -. ticket.tk_enqueued));
          reevaluate t;
          true)
  in
  if finished then Limiter.Breaker.record t.breaker ~ok

let cancel t ticket =
  locked t.lock (fun () ->
      match ticket.tk_state with
      | Running | Done -> ()
      | Queued ->
        ticket.tk_state <- Done;
        t.queued <- t.queued - 1;
        Metrics.add_gauge t.g_inflight (-1);
        reevaluate t)

let level t = locked t.lock (fun () -> t.lvl)

let in_flight t = locked t.lock (fun () -> t.queued + t.running)
