(** String-keyed LRU cache with a fixed capacity.

    Backs the query-result cache of {!Engine}: keys are canonical minimum
    DFS codes of query graphs, so isomorphic queries share an entry. Not
    thread-safe on its own — callers serialize access (see
    {!Engine.contains}). *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] holds at most [capacity] entries; adding beyond that
    evicts the least recently used. A non-positive capacity disables the
    cache ([find] always misses, [add] is a no-op). *)

val capacity : 'a t -> int

val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Looking a key up makes it the most recently used. *)

val mem : 'a t -> string -> bool
(** Membership test without promoting the entry. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace; either way the key becomes the most recently used. *)

val clear : 'a t -> unit

val keys : 'a t -> string list
(** Most recently used first. *)
