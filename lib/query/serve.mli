(** The [tsg-serve] request loop: reads the {!Protocol} line protocol
    from a channel, dispatches query batches across a pool of OCaml 5
    domains (shared-counter workers — query batches are flat, so they need
    none of {!Tsg_util.Pool}'s work stealing), and writes one response
    block per request, in request order.

    Consecutive data queries ([contains]/[by-label]/[top-k]) form a batch
    that is executed in parallel; [stats] and [quit] are barriers — the
    pending batch is flushed before they are handled, so [stats] reflects
    every earlier request. Responses:

    {v
    ok <n>                                  then n result lines:
    p <id> support <count>/<db-size> <pattern>     (contains, by-label)
    p <id> score <s> support <count>/<db-size> <pattern>   (top-k)
    error <message>                         malformed request
    v}

    [stats] prints the metrics table between [begin stats]/[end stats]
    markers. *)

type outcome = {
  requests : int;  (** total requests answered (including errors) *)
  errors : int;
  quit : bool;  (** [true] when the stream ended with [quit] *)
}

val run :
  ?domains:int ->
  engine:Engine.t ->
  edge_labels:Tsg_graph.Label.t ->
  in_channel ->
  out_channel ->
  outcome
(** [domains] defaults to {!Tsg_util.Pool.default_domains} — the
    [TSG_DOMAINS] environment variable when set, otherwise
    [Domain.recommended_domain_count ()] capped at 8 — the same default
    [Taxogram.run] uses. Parsing (which interns edge labels) stays on the
    calling domain; only query execution fans out. *)
