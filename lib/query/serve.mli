(** The [tsg-serve] request loop: reads the {!Protocol} line protocol
    from a channel, dispatches query batches across a pool of OCaml 5
    domains (shared-counter workers — query batches are flat, so they need
    none of {!Tsg_util.Pool}'s work stealing), and writes one response
    block per request, in request order.

    Consecutive data queries ([contains]/[by-label]/[top-k]) form a batch
    that is executed in parallel; [stats], [health], [reload] and [quit]
    are barriers — the pending batch is flushed before they are handled,
    so [stats] reflects every earlier request. Responses:

    {v
    ok <n>                                  then n result lines:
    p <id> support <count>/<db-size> <pattern>     (contains, by-label)
    p <id> score <s> support <count>/<db-size> <pattern>   (top-k)
    ok health patterns <n> uptime <s> checksum <hex|-> degrade <lvl> inflight <n> domains <d> epoch <e>
    ok epoch <e>                                   (epoch)
    ok reload patterns <n> checksum <hex> epoch <e>        (reload)
    ok prepare epoch <e> patterns <n> checksum <hex>       (prepare)
    ok commit epoch <e> patterns <n>               (commit)
    ok abort                                       (abort)
    error <CODE> <message>                  malformed or failed request
    v}

    [stats] prints the metrics registry between [begin stats]/[end stats]
    markers, one machine-readable line per metric
    ({!Tsg_util.Metrics.render_machine}). Error codes are the stable
    {!Protocol.error_code} catalog.

    {b Request ids.} A request prefixed [id <token> ] (see
    {!Protocol.split_tag}) gets its reply's first line prefixed
    [id <token> ], and a {e tagged} data query is answered immediately
    instead of joining the batch awaiting the next barrier — the contract
    pipelined clients (the cluster router, [tsg-blast --router]) rely on
    to match replies to requests on a shared connection.

    The loop is hardened against misbehaving clients: request lines are
    read through a bounded buffer (an oversized line costs O(bound)
    memory and answers [OVERSIZED], it cannot balloon the heap), each
    request can carry a deadline, a request that raises — including an
    injected fault at the ["serve.request"] failpoint ({!Tsg_util.Fault})
    — answers with an [error] line instead of killing the loop, and a
    peer that disconnects mid-reply ([EPIPE]/reset) ends the loop cleanly
    rather than crashing the server. Each of these events increments a
    metrics counter ([serve.oversized], [serve.deadline_expired],
    [serve.injected_faults], [serve.disconnects]).

    When an {!Admission} gate is supplied, every data query passes
    through it before being batched: shed requests answer
    [error OVERLOADED retry-after <s>] immediately (in request order),
    admitted ones carry a ticket that is started at execution (where the
    CoDel queue-wait deadline may still expire them) and finished after,
    feeding the latency window and degradation ladder. At degradation
    level 1 and above, admitted [contains] queries run with
    [Engine.contains ~use_cache:false]. *)

type outcome = {
  requests : int;  (** total requests answered (including errors) *)
  errors : int;
  quit : bool;  (** [true] when the stream ended with [quit] *)
  disconnected : bool;
      (** [true] when the loop ended because the peer hung up mid-write *)
}

type limits = {
  max_line_bytes : int;
      (** longest accepted request line; longer lines answer with an
          error (default {!Protocol.default_max_line_bytes}) *)
  request_deadline_s : float option;
      (** per-request wall-clock deadline, measured from arrival; a
          request that misses it answers [error DEADLINE deadline
          exceeded]. [None] (the default) disables deadlines; a
          non-positive value expires every data query. *)
}

val default_limits : limits

(** {1 Artifact checksums} *)

val checksum_strings : string list -> int64
(** Order-sensitive FNV-1a64 fingerprint of a list of file contents
    ({!Epoch.contents_sum} — {!Tsg_util.Checksum.mix64} over per-file
    {!Tsg_util.Checksum.fnv1a64} hashes) — the artifact checksum reported
    by [health] and verified on hot reload. *)

val checksum_files : string list -> int64
(** {!checksum_strings} over the contents of the given paths.
    @raise Sys_error when a path cannot be read. *)

(** {1 Direct answers} *)

val answer : ?use_cache:bool -> Engine.t -> Protocol.query -> string
(** [answer engine q] is the exact reply block the serve loop would write
    for data query [q] (header line plus result lines, newline-separated,
    no trailing newline) — what the cluster layer's scatter-gather merge
    is checked against. [use_cache] defaults to [true].
    @raise Invalid_argument on barrier verbs ([stats], [health],
    [reload], [quit]), which have no engine-level answer. *)

(** {1 Bounded reads} *)

val read_bounded_line :
  in_channel -> max_bytes:int -> [ `Line of string | `Too_long ]
(** Read one [\n]-terminated line without trusting its length: past
    [max_bytes] the rest of the line is drained in bounded memory and the
    read reports [`Too_long]. EOF with pending bytes yields them as a
    final [`Line]; EOF with none raises [End_of_file]. Shared with the
    cluster router's front loop.
    @raise End_of_file at end of input. *)

(** {1 Bind addresses} *)

val parse_bind_addr : string -> (Unix.inet_addr, Tsg_util.Diagnostic.t) result
(** Parse an IP literal for {!listen}'s [bind_addr]. Invalid spellings
    answer a rule-[SRV001] diagnostic instead of raising. *)

(** {1 Serving generations}

    What one request executes against. The serve loop re-captures the
    current generation for {e every} request through [current], so a
    long-lived pooled connection (the cluster router keeps them open
    indefinitely) starts serving a hot-reloaded artifact at its next
    request — health, epoch and data answers on one connection can
    never disagree about which artifact is live. *)

type generation = {
  gen_engine : Engine.t;
  gen_labels : Tsg_graph.Label.t;
      (** connection-private edge-label parse table for this engine *)
  gen_checksum : int64 option;
}

(** Two-phase reload hooks, wired by {!listen} to its staging cell:
    [prepare] loads and verifies the on-disk artifact into a staged swap
    without serving it, [commit] promotes the staged swap atomically,
    [abort] drops it. Each returns the [ok]-line suffix or an error
    message (answered as [error RELOAD ...]). *)
type staging = {
  stage_prepare : unit -> (string, string) result;
  stage_commit : unit -> (string, string) result;
  stage_abort : unit -> (string, string) result;
}

val run :
  ?exec:Tsg_util.Pool.Exec.t ->
  ?limits:limits ->
  ?admission:Admission.t ->
  ?client:Admission.client ->
  ?checksum:(unit -> int64 option) ->
  ?reloader:(unit -> (string, string) result) ->
  ?staging:staging ->
  ?current:(unit -> generation) ->
  engine:Engine.t ->
  edge_labels:Tsg_graph.Label.t ->
  in_channel ->
  out_channel ->
  outcome
(** [exec] pins the batch-fill domain count for the whole loop (reported
    by the [health] verb and the [serve.domains] gauge). When absent, the
    count is {!Tsg_util.Pool.default_domains} — the [TSG_DOMAINS]
    environment variable when set, otherwise
    [Domain.recommended_domain_count ()] capped at 8 — read once at loop
    start, never re-read mid-stream. Parsing (which interns edge labels)
    stays on the calling domain; only query execution fans out. A worker
    exception that is not handled per-request is re-raised on the caller
    with its original backtrace.

    [admission] gates data queries (see above); [client] is the
    per-connection admission state (a fresh one is created when absent).
    [checksum] supplies the artifact checksum for [health] ([None] prints
    ["-"]). [reloader] handles the [reload] verb; without it the verb
    answers [error UNAVAILABLE reload is not enabled]. [staging]
    likewise handles [prepare]/[commit]/[abort]. [current] supplies the
    generation each request executes against (default: one static
    generation built from [engine], [edge_labels] and [checksum ()]).

    {b Epoch pins.} A data query prefixed [at <epoch>] is answered only
    when the generation that would execute it serves exactly that epoch
    ({!Engine.epoch}); otherwise the reply is [error STALE_EPOCH serving
    <cur> wanted <req>] (counter [serve.stale_epoch]) and nothing is
    computed. The pin travels with the batch entry, so the check and the
    execution always see the same engine even across a concurrent
    hot swap. *)

(** {1 TCP mode} *)

type listen_outcome = {
  connections : int;  (** accepted connections, shed ones included *)
  overloaded : int;  (** connections shed with [OVERLOADED] *)
  aggregate : outcome;  (** summed over all served connections *)
}

type reload_config = {
  reload_paths : string list;  (** pattern artifact files to re-read *)
  reload_build : (string * string) list -> Engine.t * string list;
      (** build a fresh engine (plus its edge-label names) from
          [(path, contents)] pairs — typically {!Store.of_strings} +
          {!Engine.create} against the {e same} metrics registry, so
          counters survive the swap. Raising aborts the reload. *)
}

val listen :
  ?exec:Tsg_util.Pool.Exec.t ->
  ?limits:limits ->
  ?max_conns:int ->
  ?drain_s:float ->
  ?bind_addr:Unix.inet_addr ->
  ?admission:Admission.t ->
  ?checksum:int64 ->
  ?reload:reload_config ->
  ?reload_poll:(unit -> bool) ->
  ?on_diagnostic:(Tsg_util.Diagnostic.t -> unit) ->
  ?on_listen:(int -> unit) ->
  ?should_stop:(unit -> bool) ->
  engine:Engine.t ->
  edge_labels:Tsg_graph.Label.t ->
  port:int ->
  unit ->
  listen_outcome
(** Serve the protocol over TCP on [bind_addr:port] (default
    [127.0.0.1]; [port = 0] picks a free port; [on_listen] receives the
    bound port either way). [exec] (default a one-domain executor —
    concurrency comes from connection threads) fixes the per-connection
    batch-fill domain count once for the listener's lifetime; every
    hot-reload generation serves under it. Each connection is handled by
    its own system thread running {!run} with a private O(1) overlay
    table over the current edge-label snapshot
    ({!Tsg_graph.Label.Snapshot.to_table} — {!Tsg_graph.Label.t} is not
    thread-safe; a label first seen on another connection matches no
    stored pattern, which is exactly what an unseen label means). Beyond [max_conns] (default 64)
    concurrent connections, new clients are shed with a single
    [OVERLOADED] line (kept code-less for compatibility — request-level
    sheds use [error OVERLOADED ...]).

    When [admission] is given it is shared across connections, each of
    which gets its own per-client token bucket.

    {b Hot reload.} With [reload] configured, the engine lives in an
    atomic swap cell: a [reload] verb (any connection), or [reload_poll]
    answering [true] (polled in the accept loop — hook a SIGHUP flag
    here), re-reads [reload_paths], checksums them
    ({!checksum_strings}), re-reads to verify the artifact is stable on
    disk, verifies any {!Epoch} stamp against its payload (mismatch
    rolls back under rule [EPO002]), builds the new engine off the
    accept thread, stamps it with {!Epoch.of_sources}, and swaps it in.
    Requests started before the swap finish on the engine they captured;
    the {e next} request on any connection — pooled ones included — sees
    the new generation. A failing reload (unreadable file, checksum
    instability, stamp mismatch, parse or validation error) rolls back:
    the old engine keeps serving, a diagnostic (rule [SRV002], [SRV003]
    for checksum instability, [EPO002] for stamp mismatch) goes to
    [on_diagnostic] (default: stderr) and [serve.reload.rollbacks] is
    incremented; successful swaps increment [serve.reloads]. Concurrent
    reloads are serialized; the loser answers an error. [checksum] seeds
    the cell so [health] can report the artifact fingerprint before any
    reload.

    {b Two-phase reload.} With [reload] configured the
    [prepare]/[commit]/[abort] verbs are live too: [prepare] runs the
    same load-and-verify pipeline but parks the result in a staging
    cell (honoring the ["reload.prepare"] failpoint; counter
    [serve.reload.prepares]); [commit] atomically promotes the staged
    swap (["reload.commit"] failpoint; counters [serve.reload.commits]
    and [serve.reloads]); [abort] drops it ([serve.reload.aborts]). A
    one-shot [reload] clears any staged swap — it would predate the
    artifact just loaded. The cluster router drives these across
    replicas so a shard fleet changes epochs all-or-nothing.

    The accept loop polls [should_stop] (default never) about four times
    a second; once it returns [true] — typically flipped by a
    [SIGTERM]/[SIGINT] handler — the listening socket closes and
    in-flight connections get [drain_s] seconds (default 5) to finish.
    [SIGPIPE] is ignored for the whole process, so a reset peer surfaces
    as a clean disconnect. Sheds and accepts are counted in the engine
    metrics ([serve.connections], [serve.overloaded]). *)
