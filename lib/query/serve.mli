(** The [tsg-serve] request loop: reads the {!Protocol} line protocol
    from a channel, dispatches query batches across a pool of OCaml 5
    domains (shared-counter workers — query batches are flat, so they need
    none of {!Tsg_util.Pool}'s work stealing), and writes one response
    block per request, in request order.

    Consecutive data queries ([contains]/[by-label]/[top-k]) form a batch
    that is executed in parallel; [stats], [health] and [quit] are
    barriers — the pending batch is flushed before they are handled, so
    [stats] reflects every earlier request. Responses:

    {v
    ok <n>                                  then n result lines:
    p <id> support <count>/<db-size> <pattern>     (contains, by-label)
    p <id> score <s> support <count>/<db-size> <pattern>   (top-k)
    ok health patterns <n> uptime <seconds>        (health)
    error <message>                         malformed or failed request
    v}

    [stats] prints the metrics table between [begin stats]/[end stats]
    markers.

    The loop is hardened against misbehaving clients: request lines are
    read through a bounded buffer (an oversized line costs O(bound)
    memory and answers with an error, it cannot balloon the heap), each
    request can carry a deadline, a request that raises — including an
    injected fault at the ["serve.request"] failpoint ({!Tsg_util.Fault})
    — answers with an [error] line instead of killing the loop, and a
    peer that disconnects mid-reply ([EPIPE]/reset) ends the loop cleanly
    rather than crashing the server. Each of these events increments a
    metrics counter ([serve.oversized], [serve.deadline_expired],
    [serve.injected_faults], [serve.disconnects]). *)

type outcome = {
  requests : int;  (** total requests answered (including errors) *)
  errors : int;
  quit : bool;  (** [true] when the stream ended with [quit] *)
  disconnected : bool;
      (** [true] when the loop ended because the peer hung up mid-write *)
}

type limits = {
  max_line_bytes : int;
      (** longest accepted request line; longer lines answer with an
          error (default {!Protocol.default_max_line_bytes}) *)
  request_deadline_s : float option;
      (** per-request wall-clock deadline, measured from arrival; a
          request that misses it answers [error deadline exceeded].
          [None] (the default) disables deadlines; a non-positive value
          expires every data query. *)
}

val default_limits : limits

val run :
  ?domains:int ->
  ?limits:limits ->
  engine:Engine.t ->
  edge_labels:Tsg_graph.Label.t ->
  in_channel ->
  out_channel ->
  outcome
(** [domains] defaults to {!Tsg_util.Pool.default_domains} — the
    [TSG_DOMAINS] environment variable when set, otherwise
    [Domain.recommended_domain_count ()] capped at 8 — the same default
    [Taxogram.run] uses. Parsing (which interns edge labels) stays on the
    calling domain; only query execution fans out. A worker exception
    that is not handled per-request is re-raised on the caller with its
    original backtrace. *)

(** {1 TCP mode} *)

type listen_outcome = {
  connections : int;  (** accepted connections, shed ones included *)
  overloaded : int;  (** connections shed with [OVERLOADED] *)
  aggregate : outcome;  (** summed over all served connections *)
}

val listen :
  ?limits:limits ->
  ?max_conns:int ->
  ?drain_s:float ->
  ?on_listen:(int -> unit) ->
  ?should_stop:(unit -> bool) ->
  engine:Engine.t ->
  edge_labels:Tsg_graph.Label.t ->
  port:int ->
  unit ->
  listen_outcome
(** Serve the protocol over TCP on [127.0.0.1:port] ([port = 0] picks a
    free port; [on_listen] receives the bound port either way). Each
    connection is handled by its own system thread running {!run} with
    [~domains:1] and a private copy of the edge-label table
    ({!Tsg_graph.Label.t} is not thread-safe; a label first seen on
    another connection matches no stored pattern, which is exactly what
    an unseen label means). Beyond [max_conns] (default 64) concurrent
    connections, new clients are shed with a single [OVERLOADED] line.

    The accept loop polls [should_stop] (default never) about four times
    a second; once it returns [true] — typically flipped by a
    [SIGTERM]/[SIGINT] handler — the listening socket closes and
    in-flight connections get [drain_s] seconds (default 5) to finish.
    [SIGPIPE] is ignored for the whole process, so a reset peer surfaces
    as a clean disconnect. Sheds and accepts are counted in the engine
    metrics ([serve.connections], [serve.overloaded]). *)
