(* Hash table plus intrusive doubly-linked list in recency order. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards MRU *)
  mutable next : 'a node option;  (* towards LRU *)
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable first : 'a node option;  (* most recently used *)
  mutable last : 'a node option;  (* least recently used *)
}

let create ~capacity =
  { cap = capacity; table = Hashtbl.create 64; first = None; last = None }

let capacity t = t.cap

let length t = Hashtbl.length t.table

let detach t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.first <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.first;
  n.prev <- None;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some n ->
    detach t n;
    push_front t n;
    Some n.value

let mem t key = Hashtbl.mem t.table key

let evict_last t =
  match t.last with
  | None -> ()
  | Some n ->
    detach t n;
    Hashtbl.remove t.table n.key

let add t key value =
  if t.cap > 0 then
    match Hashtbl.find_opt t.table key with
    | Some n ->
      n.value <- value;
      detach t n;
      push_front t n
    | None ->
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n;
      if Hashtbl.length t.table > t.cap then evict_last t

let clear t =
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None

let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.first
