module Bitset = Tsg_util.Bitset
module Metrics = Tsg_util.Metrics
module Timer = Tsg_util.Timer
module Graph = Tsg_graph.Graph
module Gen_iso = Tsg_iso.Gen_iso
module Pattern = Tsg_core.Pattern

type t = {
  store : Store.t;
  epoch : Epoch.t;
  cache : int list Lru.t;
  cache_lock : Mutex.t;
  metrics : Metrics.t;
  c_contains : Metrics.counter;
  c_hits : Metrics.counter;
  c_misses : Metrics.counter;
  c_candidates : Metrics.counter;
  c_iso_tests : Metrics.counter;
  c_by_label : Metrics.counter;
  c_top_k : Metrics.counter;
  h_contains : Metrics.histogram;
  h_by_label : Metrics.histogram;
  h_top_k : Metrics.histogram;
}

let create ?(cache_capacity = 1024) ?(epoch = Epoch.zero) ~metrics store =
  {
    store;
    epoch;
    cache = Lru.create ~capacity:cache_capacity;
    cache_lock = Mutex.create ();
    metrics;
    c_contains = Metrics.counter metrics "contains.queries";
    c_hits = Metrics.counter metrics "cache.hits";
    c_misses = Metrics.counter metrics "cache.misses";
    c_candidates = Metrics.counter metrics "contains.candidates";
    c_iso_tests = Metrics.counter metrics "contains.iso_tests";
    c_by_label = Metrics.counter metrics "by_label.queries";
    c_top_k = Metrics.counter metrics "top_k.queries";
    h_contains = Metrics.histogram metrics "latency.contains";
    h_by_label = Metrics.histogram metrics "latency.by_label";
    h_top_k = Metrics.histogram metrics "latency.top_k";
  }

let store t = t.store

let epoch t = t.epoch

let with_epoch t epoch = { t with epoch }

let metrics t = t.metrics

let cache_key g =
  if Graph.node_count g > 0 && Graph.is_connected g then
    Tsg_gspan.Min_code.canonical_key g
  else
    (* disconnected targets get a representation-keyed (still sound, merely
       less shareable) cache entry *)
    Format.asprintf "raw:%a" Graph.pp g

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let timed h f =
  let timer = Timer.start () in
  Fun.protect ~finally:(fun () -> Metrics.observe h (Timer.elapsed_s timer)) f

let scan t target set =
  let taxonomy = Store.taxonomy t.store in
  let tested = ref 0 in
  let hits =
    Bitset.fold
      (fun i acc ->
        incr tested;
        let pattern = (Store.pattern t.store i).Pattern.graph in
        if Gen_iso.subgraph_isomorphic taxonomy ~pattern ~target then i :: acc
        else acc)
      set []
  in
  (List.rev hits, !tested)

let contains ?(use_cache = true) t target =
  Metrics.incr t.c_contains;
  timed t.h_contains (fun () ->
      (* under degradation the min-DFS-code canonicalization itself is the
         cost being shed, so [use_cache:false] skips key computation
         entirely — not just the table lookup. A zero-capacity cache
         (--cache 0) likewise must not pay for keys it can never store. *)
      let use_cache = use_cache && Lru.capacity t.cache > 0 in
      let key = if use_cache then Some (cache_key target) else None in
      let hit =
        match key with
        | None -> None
        | Some k -> locked t.cache_lock (fun () -> Lru.find t.cache k)
      in
      match hit with
      | Some ids ->
        Metrics.incr t.c_hits;
        ids
      | None ->
        if use_cache then Metrics.incr t.c_misses;
        let cands = Store.candidates t.store target in
        Metrics.incr ~n:(Bitset.cardinal cands) t.c_candidates;
        let ids, tested = scan t target cands in
        Metrics.incr ~n:tested t.c_iso_tests;
        Option.iter
          (fun k -> locked t.cache_lock (fun () -> Lru.add t.cache k ids))
          key;
        ids)

let contains_brute t target =
  fst (scan t target (Bitset.full (Store.size t.store)))

let by_label t l =
  Metrics.incr t.c_by_label;
  timed t.h_by_label (fun () -> Bitset.to_list (Store.mentioning t.store l))

let top_k t ~k order =
  Metrics.incr t.c_top_k;
  timed t.h_top_k (fun () ->
      let take n arr to_pair =
        let n = max 0 (min n (Array.length arr)) in
        List.init n (fun i -> to_pair arr.(i))
      in
      match order with
      | `Support ->
        take k (Store.by_support t.store) (fun i ->
            (i, (Store.pattern t.store i).Pattern.support))
      | `Interest -> (
        match Store.by_interest t.store with
        | Some scored -> take k scored Fun.id
        | None ->
          failwith
            "top-k by interest needs the originating database (build the \
             store with ~db / serve with --db)"))

let cache_hit_rate t = Metrics.hit_rate ~hits:t.c_hits ~misses:t.c_misses
