(** An indexed, immutable store of mined pattern sets, ready to serve
    queries without re-mining.

    The store holds the patterns of one or more {!Tsg_core.Pattern_io}
    pattern sets together with inverted indexes over
    {!Tsg_util.Bitset}:

    - a {b generalizing} index, label → patterns containing a node whose
      label is an {e ancestor} of that label (the taxonomy descendant
      closure is applied at build time, so a query-graph label hits every
      pattern that could match it) — the candidate prefilter for
      [contains] queries;
    - a {b mentioning} index, label → patterns containing a node whose
      label is a {e descendant} of that label — taxonomy-aware
      [by-label] lookup ("patterns about [l] or any specialization");
    - {b edge-count buckets} ([with_at_most_edges]) so [contains]
      candidates never have more edges than the query graph;
    - a {b support-sorted order} (and, when the originating database is
      available, an {!Tsg_core.Interest}-ratio order) for top-k queries.

    Everything is computed at build time; a store is safe to share across
    OCaml domains. *)

type t

val build :
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  ?db:Tsg_graph.Db.t ->
  db_size:int ->
  Tsg_core.Pattern.t list ->
  t
(** [build ~taxonomy ~db_size patterns]. Every node label of every pattern
    must be a taxonomy label ([Invalid_argument] otherwise). When [db] —
    the database the patterns were mined from — is given, interest ratios
    are precomputed and {!by_interest} becomes available. *)

val load :
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  edge_labels:Tsg_graph.Label.t ->
  ?db:Tsg_graph.Db.t ->
  string list ->
  t
(** [load ~taxonomy ~edge_labels paths] reads each path and builds a
    store over the union via {!of_strings}; the recorded database size is
    the maximum across files.
    @raise Invalid_argument when a file mentions a node label that is not
    a taxonomy concept. *)

val of_strings :
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  edge_labels:Tsg_graph.Label.t ->
  ?db:Tsg_graph.Db.t ->
  (string * string) list ->
  t
(** [of_strings ~taxonomy ~edge_labels sources] builds a store from
    already-read [(path, contents)] pairs — the hot-reload path, where
    the bytes have been checksummed before parsing and must not be read
    again. [path] is used only for diagnostics.
    @raise Tsg_core.Pattern_io.Parse_error on malformed contents,
    [Invalid_argument] on out-of-taxonomy labels. *)

(** {1 Sharding} *)

val slice : t -> keep:(int -> bool) -> t
(** [slice t ~keep] is the sub-store of the patterns whose (local) id
    satisfies [keep], for serving one shard of a partitioned pattern set.
    Local ids are re-densified but {!external_id} still answers with the
    id the pattern had in the original unsliced store, and interest
    ratios are {e inherited} from [t] rather than recomputed — both are
    what make scatter-gather answers over a partition byte-identical to
    the unsliced engine. All indexes and orderings are rebuilt over the
    kept patterns (filtering preserves their relative order). Slicing a
    slice composes. *)

val external_id : t -> int -> int
(** The pattern's id in the original unsliced store — what {!slice}
    preserves and the serving layer prints. The identity on stores built
    directly. *)

(** {1 Access} *)

val size : t -> int

val db_size : t -> int

val taxonomy : t -> Tsg_taxonomy.Taxonomy.t

val pattern : t -> int -> Tsg_core.Pattern.t
(** Patterns are identified by dense ids [0 .. size-1], in load order. *)

val patterns : t -> Tsg_core.Pattern.t array
(** The backing array — do not mutate. *)

(** {1 Indexes}

    Returned bitsets have capacity {!size} and are shared — do not
    mutate. *)

val generalizing : t -> Tsg_graph.Label.id -> Tsg_util.Bitset.t
(** [generalizing t l]: patterns with a node label that is a (reflexive)
    ancestor of [l]. Empty for out-of-taxonomy labels. *)

val mentioning : t -> Tsg_graph.Label.id -> Tsg_util.Bitset.t
(** [mentioning t l]: patterns with a node label that is a (reflexive)
    descendant of [l]. Empty for out-of-taxonomy labels. *)

val with_at_most_edges : t -> int -> Tsg_util.Bitset.t
(** Patterns with at most the given number of edges. *)

val by_support : t -> int array
(** Pattern ids, highest support first (ids break ties). Shared. *)

val by_interest : t -> (int * float) array option
(** Pattern ids with their {!Tsg_core.Interest} ratios, highest first;
    [None] when the store was built without [db]. Shared. *)

val candidates : t -> Tsg_graph.Graph.t -> Tsg_util.Bitset.t
(** [candidates t g]: a fresh bitset of every pattern that could be
    generalized-subgraph-isomorphic into target [g] — a superset of the
    true answer (no false negatives), computed from the indexes alone:
    the union of {!generalizing} over [g]'s labels, cut down by edge- and
    node-count bounds and by requiring every distinct pattern label to
    generalize some label of [g]. Query labels outside the taxonomy
    contribute nothing (no pattern can match them). *)
