module Bitset = Tsg_util.Bitset
module Graph = Tsg_graph.Graph
module Taxonomy = Tsg_taxonomy.Taxonomy
module Pattern = Tsg_core.Pattern
module Interest = Tsg_core.Interest

type t = {
  taxonomy : Taxonomy.t;
  db_size : int;
  ids : int array;  (* per pattern, its id in the unsliced store *)
  patterns : Pattern.t array;
  distinct_labels : int array array;  (* per pattern, sorted distinct labels *)
  generalizing : Bitset.t array;  (* indexed by label id *)
  mentioning : Bitset.t array;  (* indexed by label id *)
  at_most_edges : Bitset.t array;  (* indexed by edge count, cumulative *)
  max_edges : int;
  by_support : int array;
  by_interest : (int * float) array option;
  trivial : Bitset.t;  (* node-less patterns: match any target *)
}

let build ~taxonomy ?db ~db_size pattern_list =
  let patterns = Array.of_list pattern_list in
  let n = Array.length patterns in
  let labels = Taxonomy.label_count taxonomy in
  let distinct_labels =
    Array.map
      (fun (p : Pattern.t) ->
        let ls = Graph.distinct_node_labels p.Pattern.graph in
        List.iter
          (fun l ->
            if l < 0 || l >= labels then
              invalid_arg
                (Printf.sprintf
                   "Store.build: pattern label %d is not a taxonomy concept" l))
          ls;
        Array.of_list ls)
      patterns
  in
  let generalizing = Array.init labels (fun _ -> Bitset.create n) in
  let mentioning = Array.init labels (fun _ -> Bitset.create n) in
  Array.iteri
    (fun i ls ->
      Array.iter
        (fun l ->
          (* a query label hits patterns labeled with any of its ancestors:
             expand each pattern label over its descendant closure *)
          Bitset.iter
            (fun d -> Bitset.set generalizing.(d) i)
            (Taxonomy.descendant_set taxonomy l);
          Bitset.iter
            (fun a -> Bitset.set mentioning.(a) i)
            (Taxonomy.ancestor_set taxonomy l))
        ls)
    distinct_labels;
  let max_edges =
    Array.fold_left (fun acc p -> max acc (Pattern.edge_count p)) 0 patterns
  in
  let at_most_edges = Array.init (max_edges + 1) (fun _ -> Bitset.create n) in
  Array.iteri
    (fun i p ->
      for k = Pattern.edge_count p to max_edges do
        Bitset.set at_most_edges.(k) i
      done)
    patterns;
  let by_support = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c =
        compare patterns.(b).Pattern.support_count
          patterns.(a).Pattern.support_count
      in
      if c <> 0 then c else compare a b)
    by_support;
  let by_interest =
    match db with
    | None -> None
    | Some db ->
      let freq = Interest.label_frequencies taxonomy db in
      let by_key = Hashtbl.create (2 * n) in
      Array.iter
        (fun (p : Pattern.t) ->
          Hashtbl.replace by_key (Pattern.key p) p.Pattern.support_count)
        patterns;
      let support_of g =
        Hashtbl.find_opt by_key (Tsg_gspan.Min_code.canonical_key g)
      in
      let scored =
        Array.mapi
          (fun i p -> (i, Interest.ratio taxonomy db ~freq ~support_of p))
          patterns
      in
      Array.sort
        (fun (a, ra) (b, rb) ->
          let c = compare rb ra in
          if c <> 0 then c else compare a b)
        scored;
      Some scored
  in
  let trivial = Bitset.create n in
  Array.iteri
    (fun i ls -> if Array.length ls = 0 then Bitset.set trivial i)
    distinct_labels;
  {
    taxonomy;
    db_size;
    ids = Array.init n (fun i -> i);
    patterns;
    distinct_labels;
    generalizing;
    mentioning;
    at_most_edges;
    max_edges;
    by_support;
    by_interest;
    trivial;
  }

let of_strings ~taxonomy ~edge_labels ?db sources =
  let node_labels = Taxonomy.labels taxonomy in
  let known = Taxonomy.label_count taxonomy in
  let sets =
    List.map
      (fun (path, contents) ->
        let patterns, size =
          Tsg_core.Pattern_io.parse ~file:path ~node_labels ~edge_labels
            contents
        in
        (* Pattern_io interns unseen names; anything past the taxonomy's
           label count is not a concept of the DAG *)
        List.iter
          (fun (p : Pattern.t) ->
            Array.iter
              (fun l ->
                if l >= known then
                  invalid_arg
                    (Printf.sprintf
                       "Store.load: %s uses label %s which is not in the \
                        taxonomy"
                       path
                       (Tsg_graph.Label.name node_labels l)))
              (Graph.node_labels p.Pattern.graph))
          patterns;
        (patterns, size))
      sources
  in
  let db_size = List.fold_left (fun acc (_, s) -> max acc s) 0 sets in
  build ~taxonomy ?db ~db_size (List.concat_map fst sets)

let load ~taxonomy ~edge_labels ?db paths =
  of_strings ~taxonomy ~edge_labels ?db
    (List.map (fun p -> (p, Tsg_util.Safe_io.read_file p)) paths)

let slice t ~keep =
  let n = Array.length t.patterns in
  let sel = ref [] in
  for i = n - 1 downto 0 do
    if keep i then sel := i :: !sel
  done;
  let sel = Array.of_list !sel in
  let remap = Hashtbl.create (2 * Array.length sel) in
  Array.iteri (fun j i -> Hashtbl.replace remap i j) sel;
  let kept = Array.to_list (Array.map (fun i -> t.patterns.(i)) sel) in
  (* rebuilding over the kept patterns (in order) yields local indexes
     whose orders are exactly the global ones filtered; interest ratios
     must NOT be recomputed over the slice — they depend on the full
     pattern set — so they are inherited from the parent instead *)
  let s = build ~taxonomy:t.taxonomy ~db_size:t.db_size kept in
  let by_interest =
    Option.map
      (fun scored ->
        Array.to_list scored
        |> List.filter_map (fun (i, r) ->
               Option.map (fun j -> (j, r)) (Hashtbl.find_opt remap i))
        |> Array.of_list)
      t.by_interest
  in
  { s with by_interest; ids = Array.map (fun i -> t.ids.(i)) sel }

let external_id t i = t.ids.(i)

let size t = Array.length t.patterns

let db_size t = t.db_size

let taxonomy t = t.taxonomy

let pattern t i = t.patterns.(i)

let patterns t = t.patterns

let empty_of t = Bitset.create (size t)

let generalizing t l =
  if l >= 0 && l < Array.length t.generalizing then t.generalizing.(l)
  else empty_of t

let mentioning t l =
  if l >= 0 && l < Array.length t.mentioning then t.mentioning.(l)
  else empty_of t

let with_at_most_edges t k =
  if k < 0 then empty_of t else t.at_most_edges.(min k t.max_edges)

let by_support t = t.by_support

let by_interest t = t.by_interest

let candidates t g =
  let n = size t in
  let labels = Taxonomy.label_count t.taxonomy in
  let qlabels = Graph.distinct_node_labels g in
  let qset = Bitset.create labels in
  let union = Bitset.create n in
  List.iter
    (fun l ->
      if l >= 0 && l < labels then begin
        Bitset.set qset l;
        Bitset.union_into ~dst:union union t.generalizing.(l)
      end)
    qlabels;
  Bitset.inter_into ~dst:union union (with_at_most_edges t (Graph.edge_count g));
  (* every distinct pattern label must generalize some query label *)
  let out = Bitset.create n in
  Bitset.iter
    (fun i ->
      if
        Pattern.node_count t.patterns.(i) <= Graph.node_count g
        && Array.for_all
             (fun l ->
               Bitset.inter_cardinal (Taxonomy.descendant_set t.taxonomy l) qset
               > 0)
             t.distinct_labels.(i)
      then Bitset.set out i)
    union;
  (* a pattern with no nodes occurs in every target *)
  Bitset.union_into ~dst:out out t.trivial;
  out
