module Taxonomy = Tsg_taxonomy.Taxonomy
module Label = Tsg_graph.Label
module Pattern = Tsg_core.Pattern
module Metrics = Tsg_util.Metrics
module Fault = Tsg_util.Fault
module Safe_io = Tsg_util.Safe_io
module Diagnostic = Tsg_util.Diagnostic

type outcome = {
  requests : int;
  errors : int;
  quit : bool;
  disconnected : bool;
}

let no_outcome = { requests = 0; errors = 0; quit = false; disconnected = false }

type limits = { max_line_bytes : int; request_deadline_s : float option }

let default_limits =
  { max_line_bytes = Protocol.default_max_line_bytes; request_deadline_s = None }

(* --- artifact checksums ------------------------------------------------ *)

let checksum_strings = Epoch.contents_sum

let checksum_files paths = checksum_strings (List.map Safe_io.read_file paths)

(* --- bind addresses ---------------------------------------------------- *)

let parse_bind_addr s =
  match Unix.inet_addr_of_string s with
  | addr -> Ok addr
  | exception Failure _ ->
    Error
      (Diagnostic.makef ~rule:"SRV001" Diagnostic.Error
         "invalid bind address %S (expected an IPv4 or IPv6 literal, e.g. \
          0.0.0.0)"
         s)

let result_line ~names ~db_size ?score store id =
  let p = Store.pattern store id in
  let score =
    match score with
    | None -> ""
    | Some s -> Printf.sprintf " score %.4f" s
  in
  (* the printed id is the id in the unsliced store, so replies from
     shard slices merge without translation (identity when unsliced) *)
  Printf.sprintf "p %d%s support %d/%d %s" (Store.external_id store id) score
    p.Pattern.support_count db_size
    (Pattern.to_string ~names p)

let is_error r =
  let _, r = Protocol.split_tag r in
  String.length r >= 5 && String.sub r 0 5 = "error"

let overloaded_line retry_after_s =
  Protocol.error_line Protocol.Overloaded
    (Printf.sprintf "retry-after %.3f" (Float.max 0.0 retry_after_s))

let execute ~use_cache engine ~names query =
  let store = Engine.store engine in
  let db_size = Store.db_size store in
  let listing ids line =
    String.concat "\n"
      (Printf.sprintf "ok %d" (List.length ids) :: List.map line ids)
  in
  match query with
  | Protocol.Contains g ->
    let ids = Engine.contains ~use_cache engine g in
    listing ids (result_line ~names ~db_size store)
  | Protocol.By_label l ->
    let ids = Engine.by_label engine l in
    listing ids (result_line ~names ~db_size store)
  | Protocol.Top_k (k, order) -> (
    match Engine.top_k engine ~k order with
    | scored ->
      listing scored (fun (id, s) ->
          result_line ~names ~db_size ~score:s store id)
    | exception Failure msg -> Protocol.error_line Protocol.Unavailable msg)
  | Protocol.(
      Stats | Health | Epoch_info | Reload | Prepare | Commit | Abort | Quit)
    ->
    assert false (* barriers; see run *)

let answer ?(use_cache = true) engine query =
  match query with
  | Protocol.(
      Stats | Health | Epoch_info | Reload | Prepare | Commit | Abort | Quit)
    ->
    invalid_arg "Serve.answer: barrier verbs have no engine-level answer"
  | Protocol.(Contains _ | By_label _ | Top_k _) as q ->
    let names = Taxonomy.labels (Store.taxonomy (Engine.store engine)) in
    execute ~use_cache engine ~names q

(* a request that blew its deadline, crashed, or drew an injected fault
   answers with an error line; the loop itself never dies for one request *)
let execute_guarded ~use_cache engine ~names ~limits ~deadline_c ~fault_c
    ~arrival query =
  let expired () =
    match limits.request_deadline_s with
    | None -> false
    | Some d -> Unix.gettimeofday () -. arrival >= d
  in
  if expired () then begin
    Metrics.incr deadline_c;
    Protocol.error_line Protocol.Deadline "deadline exceeded"
  end
  else
    match
      Fault.inject "serve.request";
      execute ~use_cache engine ~names query
    with
    | reply ->
      if expired () then begin
        Metrics.incr deadline_c;
        Protocol.error_line Protocol.Deadline "deadline exceeded"
      end
      else reply
    | exception Fault.Injected { site; hit } ->
      Metrics.incr fault_c;
      Protocol.error_line Protocol.Fault
        (Printf.sprintf "injected fault at %s (hit %d)" site hit)
    | exception e ->
      Protocol.error_line Protocol.Internal (Printexc.to_string e)

(* one response slot per request; workers pull indices off a shared
   counter — a flat batch has no subtrees to steal, so this stays simpler
   than Tsg_util.Pool. A worker failure is re-raised on the caller with
   the original backtrace (Domain.join alone would lose it). *)
let flush_batch ~domains ~fill batch =
  let batch = Array.of_list (List.rev batch) in
  let n = Array.length batch in
  let out = Array.make n "" in
  let run i = out.(i) <- fill batch.(i) in
  let domains = max 1 (min domains n) in
  if domains = 1 then
    for i = 0 to n - 1 do
      run i
    done
  else begin
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run i;
          loop ()
        end
      in
      try loop ()
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failure None (Some (e, bt)))
    in
    let handles = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join handles;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end;
  out

let default_domains () = Tsg_util.Pool.default_domains ()

module Exec = Tsg_util.Pool.Exec

(* read one request line without trusting its length: past [max_bytes]
   the rest of the line is drained (bounded memory) and the line reports
   as oversized. EOF with pending bytes yields them as a final line. *)
let read_bounded_line ic ~max_bytes =
  let buf = Buffer.create 128 in
  let rec go oversized =
    match input_char ic with
    | '\n' -> if oversized then `Too_long else `Line (Buffer.contents buf)
    | c ->
      if oversized || Buffer.length buf >= max_bytes then go true
      else begin
        Buffer.add_char buf c;
        go false
      end
    | exception End_of_file ->
      if oversized then `Too_long
      else if Buffer.length buf = 0 then raise End_of_file
      else `Line (Buffer.contents buf)
  in
  go false

(* --- serving generations ----------------------------------------------- *)

(* what one request executes against: an engine, the edge-label parse
   table matching it, and the artifact checksum it was loaded from. The
   serve loop re-captures the current generation for every request
   (listen's [current] reads the hot-swap cell), so a long-lived pooled
   connection — the router keeps them open for hours — starts serving a
   reloaded artifact at its next request, not at its next reconnect. *)
type generation = {
  gen_engine : Engine.t;
  gen_labels : Label.t;
  gen_checksum : int64 option;
}

(* the two-phase reload hooks (TCP mode wires these to the staged cell) *)
type staging = {
  stage_prepare : unit -> (string, string) result;
  stage_commit : unit -> (string, string) result;
  stage_abort : unit -> (string, string) result;
}

let run ?exec ?(limits = default_limits) ?admission ?client
    ?(checksum = fun () -> None) ?reloader ?staging ?current ~engine
    ~edge_labels ic oc =
  (* the executor pins the domain count for the whole loop: TSG_DOMAINS is
     read when the Exec is created (at most once, here), never re-read
     behind a live loop's back by a concurrent reload *)
  let domains =
    match exec with Some e -> Exec.domains e | None -> default_domains ()
  in
  let metrics = Engine.metrics engine in
  Metrics.set_gauge (Metrics.gauge metrics "serve.domains") domains;
  let oversized_c = Metrics.counter metrics "serve.oversized" in
  let deadline_c = Metrics.counter metrics "serve.deadline_expired" in
  let disconnect_c = Metrics.counter metrics "serve.disconnects" in
  let fault_c = Metrics.counter metrics "serve.injected_faults" in
  let health_c = Metrics.counter metrics "serve.health" in
  let stale_c = Metrics.counter metrics "serve.stale_epoch" in
  let current =
    match current with
    | Some f -> f
    | None ->
      let static =
        {
          gen_engine = engine;
          gen_labels = edge_labels;
          gen_checksum = checksum ();
        }
      in
      fun () -> static
  in
  let client =
    match (admission, client) with
    | Some adm, None -> Some (Admission.client adm)
    | _, c -> c
  in
  let started = Unix.gettimeofday () in
  let requests = ref 0 and errors = ref 0 in
  let disconnected = ref false in
  (* a peer that hangs up mid-reply (EPIPE with SIGPIPE ignored, reset
     sockets) must never kill the loop: note it, stop writing, drain out *)
  let safe_write f =
    if not !disconnected then
      try f ()
      with Sys_error _ ->
        disconnected := true;
        Metrics.incr disconnect_c
  in
  let batch = ref [] in
  let gen_names gen =
    Taxonomy.labels (Store.taxonomy (Engine.store gen.gen_engine))
  in
  let fill (arrival, tag, item) =
    Protocol.tag_reply tag
      (match item with
      | `Error (code, msg) -> Protocol.error_line code msg
      | `Query (gen, q) ->
        execute_guarded ~use_cache:true gen.gen_engine ~names:(gen_names gen)
          ~limits ~deadline_c ~fault_c ~arrival q
      | `Ticket (gen, adm, ticket, q) -> (
        match Admission.start adm ticket with
        | `Expired retry_after_s -> overloaded_line retry_after_s
        | `Run level ->
          let reply =
            execute_guarded ~use_cache:(level = 0) gen.gen_engine
              ~names:(gen_names gen) ~limits ~deadline_c ~fault_c ~arrival q
          in
          Admission.finish adm ticket ~ok:(not (is_error reply));
          reply))
  in
  let flush () =
    let responses = flush_batch ~domains ~fill !batch in
    batch := [];
    Array.iter
      (fun r ->
        if is_error r then incr errors;
        safe_write (fun () ->
            output_string oc r;
            output_char oc '\n'))
      responses;
    safe_write (fun () -> flush oc)
  in
  (* an admitted request the loop abandons (torn connection) must leave
     the admission accounting, or the queue looks full forever *)
  let cancel_pending () =
    List.iter
      (fun (_, _, item) ->
        match item with
        | `Ticket (_, adm, ticket, _) -> Admission.cancel adm ticket
        | `Error _ | `Query _ -> ())
      !batch
  in
  let enqueue ?tag entry =
    batch := (Unix.gettimeofday (), tag, entry) :: !batch
  in
  let data_query ?tag gen pin q =
    (* the epoch pin is enforced against the exact engine this entry will
       execute on — the generation travels with the entry, so the check
       and the computation cannot disagree *)
    let pinned_out =
      match pin with
      | None -> None
      | Some token -> (
        match Epoch.of_string token with
        | None ->
          Some
            ( Protocol.Badreq,
              Printf.sprintf "bad epoch %S in at-pin" token )
        | Some wanted ->
          let serving = Engine.epoch gen.gen_engine in
          if Epoch.equal serving wanted then None
          else begin
            Metrics.incr stale_c;
            Some
              ( Protocol.Stale_epoch,
                Printf.sprintf "serving %s wanted %s"
                  (Epoch.to_string serving) (Epoch.to_string wanted) )
          end)
    in
    (match pinned_out with
    | Some err -> enqueue ?tag (`Error err)
    | None -> (
      match admission with
      | None -> enqueue ?tag (`Query (gen, q))
      | Some adm -> (
        let kind =
          match q with
          | Protocol.Contains _ -> Admission.Contains
          | Protocol.By_label _ -> Admission.By_label
          | Protocol.Top_k (k, _) -> Admission.Top_k k
          | Protocol.(
              Stats | Health | Epoch_info | Reload | Prepare | Commit | Abort
              | Quit) ->
            assert false
        in
        let cl =
          match client with
          | Some c -> c
          | None -> assert false (* built above when admission is present *)
        in
        match Admission.admit adm cl kind with
        | Admission.Admit ticket -> enqueue ?tag (`Ticket (gen, adm, ticket, q))
        | Admission.Shed { reason = _; retry_after_s } ->
          enqueue ?tag
            (`Error
              ( Protocol.Overloaded,
                Printf.sprintf "retry-after %.3f" (Float.max 0.0 retry_after_s)
              )))));
    (* a tagged request announces a pipelined client matching replies by
       id: answer it now rather than at the next barrier *)
    if tag <> None then flush ()
  in
  let barrier_reply tag reply =
    if is_error reply then incr errors;
    safe_write (fun () ->
        output_string oc (Protocol.tag_reply tag reply);
        output_char oc '\n';
        Stdlib.flush oc)
  in
  let staged_reply tag verb hook =
    incr requests;
    flush ();
    barrier_reply tag
      (match (staging, hook) with
      | None, _ ->
        Protocol.error_line Protocol.Unavailable
          (Printf.sprintf "%s is not enabled" verb)
      | Some _, None -> assert false
      | Some _, Some f -> (
        match f () with
        | Ok msg -> "ok " ^ msg
        | Error msg -> Protocol.error_line Protocol.Reload_failed msg))
  in
  let quit = ref false in
  (try
     (try
        while (not !quit) && not !disconnected do
          match read_bounded_line ic ~max_bytes:limits.max_line_bytes with
          | `Too_long ->
            incr requests;
            Metrics.incr oversized_c;
            enqueue
              (`Error
                ( Protocol.Oversized,
                  Printf.sprintf "request exceeds %d bytes"
                    limits.max_line_bytes ))
          | `Line line -> (
            let gen = current () in
            let taxonomy = Store.taxonomy (Engine.store gen.gen_engine) in
            let tag, body = Protocol.split_tag line in
            let pin, body = Protocol.split_at body in
            match
              Protocol.parse ~max_bytes:limits.max_line_bytes ~taxonomy
                ~edge_labels:gen.gen_labels body
            with
            | None -> ()
            | Some Protocol.Stats ->
              incr requests;
              flush ();
              safe_write (fun () ->
                  output_string oc (Protocol.tag_reply tag "begin stats");
                  output_char oc '\n';
                  output_string oc (Metrics.render_machine metrics);
                  output_string oc "end stats\n";
                  Stdlib.flush oc)
            | Some Protocol.Health ->
              incr requests;
              Metrics.incr health_c;
              flush ();
              let gen = current () in
              let csum =
                match gen.gen_checksum with
                | Some c -> Printf.sprintf "%016Lx" c
                | None -> "-"
              in
              let level, inflight =
                match admission with
                | Some adm -> (Admission.level adm, Admission.in_flight adm)
                | None -> (0, 0)
              in
              barrier_reply tag
                (Printf.sprintf
                   "ok health patterns %d uptime %.3f checksum %s degrade %d \
                    inflight %d domains %d epoch %s"
                   (Store.size (Engine.store gen.gen_engine))
                   (Unix.gettimeofday () -. started)
                   csum level inflight domains
                   (Epoch.to_string (Engine.epoch gen.gen_engine)))
            | Some Protocol.Epoch_info ->
              incr requests;
              flush ();
              let gen = current () in
              barrier_reply tag
                (Printf.sprintf "ok epoch %s"
                   (Epoch.to_string (Engine.epoch gen.gen_engine)))
            | Some Protocol.Reload ->
              incr requests;
              flush ();
              barrier_reply tag
                (match reloader with
                | None ->
                  Protocol.error_line Protocol.Unavailable
                    "reload is not enabled"
                | Some f -> (
                  match f () with
                  | Ok msg -> "ok reload " ^ msg
                  | Error msg ->
                    Protocol.error_line Protocol.Reload_failed msg))
            | Some Protocol.Prepare ->
              staged_reply tag "prepare"
                (Option.map (fun s -> s.stage_prepare) staging)
            | Some Protocol.Commit ->
              staged_reply tag "commit"
                (Option.map (fun s -> s.stage_commit) staging)
            | Some Protocol.Abort ->
              staged_reply tag "abort"
                (Option.map (fun s -> s.stage_abort) staging)
            | Some Protocol.Quit ->
              incr requests;
              quit := true
            | Some (Protocol.(Contains _ | By_label _ | Top_k _) as q) ->
              incr requests;
              data_query ?tag gen pin q
            | exception Protocol.Parse_error msg ->
              incr requests;
              enqueue ?tag (`Error (Protocol.Badreq, msg));
              if tag <> None then flush ())
        done
      with End_of_file -> ());
     flush ()
   with e ->
     cancel_pending ();
     raise e);
  {
    requests = !requests;
    errors = !errors;
    quit = !quit;
    disconnected = !disconnected;
  }

(* --- TCP mode ---------------------------------------------------------- *)

type listen_outcome = {
  connections : int;
  overloaded : int;
  aggregate : outcome;
}

type reload_config = {
  reload_paths : string list;
  reload_build : (string * string) list -> Engine.t * string list;
}

(* the unit of hot swap. Connections re-read the cell for every request
   (through [current] above), so pooled connections pick up a swap at
   their next request; the swap itself stays atomic — no request ever
   sees the engine of one generation with the labels of another. *)
type swap = {
  sw_engine : Engine.t;
  sw_labels : Label.Snapshot.t;
  sw_checksum : int64 option;
}

let merge_outcome a b =
  {
    requests = a.requests + b.requests;
    errors = a.errors + b.errors;
    quit = a.quit || b.quit;
    disconnected = a.disconnected || b.disconnected;
  }

let ignore_sigpipe () =
  (* a write to a reset socket must surface as EPIPE, not kill the server *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let default_on_diagnostic d = prerr_endline (Diagnostic.to_string d)

let listen ?exec ?(limits = default_limits) ?(max_conns = 64) ?(drain_s = 5.0)
    ?(bind_addr = Unix.inet_addr_loopback) ?admission ?checksum ?reload
    ?(reload_poll = fun () -> false)
    ?(on_diagnostic = default_on_diagnostic) ?on_listen
    ?(should_stop = fun () -> false) ~engine ~edge_labels ~port () =
  ignore_sigpipe ();
  (* one executor for the whole listener: the per-connection domain count
     is decided here, once, and every generation of hot-reloaded engine
     serves under it — a reload can no longer observe a changed
     TSG_DOMAINS mid-flight *)
  let exec =
    match exec with Some e -> e | None -> Exec.create ~domains:1 ()
  in
  let metrics = Engine.metrics engine in
  Metrics.set_gauge (Metrics.gauge metrics "serve.domains") (Exec.domains exec);
  let conns_c = Metrics.counter metrics "serve.connections" in
  let overloaded_c = Metrics.counter metrics "serve.overloaded" in
  let disconnect_c = Metrics.counter metrics "serve.disconnects" in
  let reloads_c = Metrics.counter metrics "serve.reloads" in
  let rollbacks_c = Metrics.counter metrics "serve.reload.rollbacks" in
  let prepares_c = Metrics.counter metrics "serve.reload.prepares" in
  let commits_c = Metrics.counter metrics "serve.reload.commits" in
  let aborts_c = Metrics.counter metrics "serve.reload.aborts" in
  (* Protocol.parse interns edge labels, and Label.t is not thread-safe:
     every connection parses against its own table. The swap cell holds an
     immutable snapshot; each connection builds a private O(1) overlay
     table over it ({!Label.Snapshot.to_table}) — no copying, and a label
     first seen on some other connection simply matches no stored pattern
     on this one, exactly what an unseen label means anyway. *)
  let cell =
    Atomic.make
      {
        sw_engine = engine;
        sw_labels = Label.Snapshot.of_table edge_labels;
        sw_checksum = checksum;
      }
  in
  (* the two-phase staging cell: [prepare] verifies and parks a complete
     swap here without serving it; [commit] promotes it atomically *)
  let staged_cell = Atomic.make None in
  let reload_lock = Mutex.create () in
  let rollback rule fmt =
    Printf.ksprintf
      (fun msg ->
        Metrics.incr rollbacks_c;
        on_diagnostic
          (Diagnostic.makef ~rule Diagnostic.Error
             "reload rolled back, keeping current artifact: %s" msg);
        Error msg)
      fmt
  in
  (* read the artifact set, prove it stable on disk (double read) and
     internally consistent (epoch stamp), and build the swap — shared by
     the one-shot reload and the two-phase prepare *)
  let load_swap cfg =
    match List.map (fun p -> (p, Safe_io.read_file p)) cfg.reload_paths with
    | exception Sys_error msg -> rollback "SRV002" "%s" msg
    | sources -> (
      let csum = checksum_strings (List.map snd sources) in
      (* a second read must hash identically: a writer racing the
         reload (no atomic rename) would otherwise be parsed half
         old, half new *)
      let csum2 =
        try Some (checksum_files cfg.reload_paths)
        with Sys_error _ -> None
      in
      if csum2 <> Some csum then
        rollback "SRV003"
          "artifact changed on disk while reloading (checksum instability)"
      else
        let rec bad_stamp = function
          | [] -> None
          | (path, content) :: rest -> (
            match Epoch.verify_stamp content with
            | Ok () -> bad_stamp rest
            | Error msg -> Some (path, msg))
        in
        match bad_stamp sources with
        | Some (path, msg) -> rollback "EPO002" "%s: %s" path msg
        | None -> (
          match cfg.reload_build sources with
          | engine, names ->
            let engine =
              Engine.with_epoch engine (Epoch.of_sources sources)
            in
            Ok
              {
                sw_engine = engine;
                sw_labels = Label.Snapshot.of_table (Label.of_names names);
                sw_checksum = Some csum;
              }
          | exception Tsg_core.Pattern_io.Parse_error d ->
            rollback "SRV002" "%s" (Diagnostic.to_string d)
          | exception (Invalid_argument msg | Failure msg) ->
            rollback "SRV002" "%s" msg
          | exception e -> rollback "SRV002" "%s" (Printexc.to_string e)))
  in
  let with_reload_lock f =
    if not (Mutex.try_lock reload_lock) then
      Error "a reload is already in progress"
    else Fun.protect ~finally:(fun () -> Mutex.unlock reload_lock) f
  in
  let swap_stats sw =
    ( Store.size (Engine.store sw.sw_engine),
      Epoch.to_string (Engine.epoch sw.sw_engine) )
  in
  let do_reload cfg =
    with_reload_lock (fun () ->
        match load_swap cfg with
        | Error _ as e -> e
        | Ok sw ->
          Atomic.set cell sw;
          (* whatever was staged predates the artifact just loaded *)
          Atomic.set staged_cell None;
          Metrics.incr reloads_c;
          let patterns, epoch = swap_stats sw in
          Ok
            (Printf.sprintf "patterns %d checksum %016Lx epoch %s" patterns
               (Option.value ~default:0L sw.sw_checksum)
               epoch))
  in
  let do_prepare cfg =
    with_reload_lock (fun () ->
        match Fault.inject "reload.prepare" with
        | exception Tsg_util.Fault.Injected { site; hit } ->
          rollback "SRV002" "injected fault at %s (hit %d)" site hit
        | () -> (
          match load_swap cfg with
          | Error _ as e -> e
          | Ok sw ->
            Atomic.set staged_cell (Some sw);
            Metrics.incr prepares_c;
            let patterns, epoch = swap_stats sw in
            Ok
              (Printf.sprintf "prepare epoch %s patterns %d checksum %016Lx"
                 epoch patterns
                 (Option.value ~default:0L sw.sw_checksum))))
  in
  let do_commit () =
    match Fault.inject "reload.commit" with
    | exception Tsg_util.Fault.Injected { site; hit } ->
      Metrics.incr rollbacks_c;
      Error (Printf.sprintf "injected fault at %s (hit %d)" site hit)
    | () -> (
      match Atomic.exchange staged_cell None with
      | None -> Error "nothing prepared"
      | Some sw ->
        Atomic.set cell sw;
        Metrics.incr commits_c;
        Metrics.incr reloads_c;
        let patterns, epoch = swap_stats sw in
        Ok (Printf.sprintf "commit epoch %s patterns %d" epoch patterns))
  in
  let do_abort () =
    (match Atomic.exchange staged_cell None with
    | Some _ -> Metrics.incr aborts_c
    | None -> ());
    Ok "abort"
  in
  let reloader = Option.map (fun cfg () -> do_reload cfg) reload in
  let staging =
    Option.map
      (fun cfg ->
        {
          stage_prepare = (fun () -> do_prepare cfg);
          stage_commit = do_commit;
          stage_abort = do_abort;
        })
      reload
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let actual_port =
    try
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (bind_addr, port));
      Unix.listen sock 64;
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> port
    with e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e
  in
  Option.iter (fun f -> f actual_port) on_listen;
  let active = Atomic.make 0 in
  let agg_lock = Mutex.create () in
  let connections = ref 0 in
  let overloaded = ref 0 in
  let aggregate = ref no_outcome in
  let handle fd =
    (* replies flush in small writes; without this, Nagle holds the final
       short segment for the client's delayed ACK (tens of ms) *)
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    let finished o =
      Mutex.lock agg_lock;
      aggregate := merge_outcome !aggregate o;
      Mutex.unlock agg_lock;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.decr active
    in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (* per-request generation capture: the overlay parse table is rebuilt
       only when the swap cell actually changed under this connection *)
    let cached = ref None in
    let current () =
      let sw = Atomic.get cell in
      match !cached with
      | Some (sw', gen) when sw' == sw -> gen
      | _ ->
        let gen =
          {
            gen_engine = sw.sw_engine;
            gen_labels = Label.Snapshot.to_table sw.sw_labels;
            gen_checksum = sw.sw_checksum;
          }
        in
        cached := Some (sw, gen);
        gen
    in
    let sw = Atomic.get cell in
    let client = Option.map Admission.client admission in
    match
      run ~exec ~limits ?admission ?client ?reloader ?staging ~current
        ~engine:sw.sw_engine
        ~edge_labels:(Label.Snapshot.to_table sw.sw_labels)
        ic oc
    with
    | o ->
      (try flush oc with Sys_error _ -> ());
      finished o
    | exception _ ->
      (* a connection torn down mid-read (ECONNRESET and friends) *)
      Metrics.incr disconnect_c;
      finished { no_outcome with disconnected = true }
  in
  let running = ref true in
  while !running do
    if should_stop () then running := false
    else begin
      (if reload_poll () then
         match reload with
         | Some cfg ->
           (* off the accept thread: a slow artifact load must not stall
              accepts *)
           ignore (Thread.create (fun () -> ignore (do_reload cfg)) ())
         | None -> ());
      match Unix.select [ sock ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept sock with
        | fd, _ ->
          incr connections;
          Metrics.incr conns_c;
          if Atomic.get active >= max_conns then begin
            (* load shedding: tell the client and hang up — on a detached
               thread, with a bounded drain of whatever the client already
               sent, so the close doesn't RST the reply out of the
               client's receive queue (and never stalls the accept loop) *)
            incr overloaded;
            Metrics.incr overloaded_c;
            ignore
              (Thread.create
                 (fun fd ->
                   (try ignore (Unix.write_substring fd "OVERLOADED\n" 0 11)
                    with Unix.Unix_error _ -> ());
                   (try Unix.shutdown fd Unix.SHUTDOWN_SEND
                    with Unix.Unix_error _ -> ());
                   (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.5
                    with Unix.Unix_error _ | Invalid_argument _ -> ());
                   let buf = Bytes.create 1024 in
                   (try
                      while Unix.read fd buf 0 (Bytes.length buf) > 0 do
                        ()
                      done
                    with Unix.Unix_error _ -> ());
                   try Unix.close fd with Unix.Unix_error _ -> ())
                 fd)
          end
          else begin
            Atomic.incr active;
            ignore (Thread.create handle fd)
          end
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (* graceful drain: in-flight connections get [drain_s] to finish *)
  let t0 = Unix.gettimeofday () in
  while Atomic.get active > 0 && Unix.gettimeofday () -. t0 < drain_s do
    Thread.delay 0.02
  done;
  Mutex.lock agg_lock;
  let aggregate = !aggregate in
  Mutex.unlock agg_lock;
  { connections = !connections; overloaded = !overloaded; aggregate }
