module Taxonomy = Tsg_taxonomy.Taxonomy
module Pattern = Tsg_core.Pattern
module Metrics = Tsg_util.Metrics

type outcome = { requests : int; errors : int; quit : bool }

let result_line ~names ~db_size ?score store id =
  let p = Store.pattern store id in
  let score =
    match score with
    | None -> ""
    | Some s -> Printf.sprintf " score %.4f" s
  in
  Printf.sprintf "p %d%s support %d/%d %s" id score p.Pattern.support_count
    db_size
    (Pattern.to_string ~names p)

let execute engine ~names query =
  let store = Engine.store engine in
  let db_size = Store.db_size store in
  let listing ids line =
    String.concat "\n"
      (Printf.sprintf "ok %d" (List.length ids) :: List.map line ids)
  in
  match query with
  | Protocol.Contains g ->
    let ids = Engine.contains engine g in
    listing ids (result_line ~names ~db_size store)
  | Protocol.By_label l ->
    let ids = Engine.by_label engine l in
    listing ids (result_line ~names ~db_size store)
  | Protocol.Top_k (k, order) -> (
    match Engine.top_k engine ~k order with
    | scored ->
      listing scored (fun (id, s) ->
          result_line ~names ~db_size ~score:s store id)
    | exception Failure msg -> "error " ^ msg)
  | Protocol.Stats | Protocol.Quit -> assert false (* barriers; see run *)

(* one response slot per request; workers pull indices off a shared
   counter — a flat batch has no subtrees to steal, so this stays simpler
   than Tsg_util.Pool *)
let flush_batch ~domains ~engine ~names batch =
  let batch = Array.of_list (List.rev batch) in
  let n = Array.length batch in
  let out = Array.make n "" in
  let fill i =
    out.(i) <-
      (match batch.(i) with
      | `Query q -> execute engine ~names q
      | `Error msg -> "error " ^ msg)
  in
  let domains = max 1 (min domains n) in
  if domains = 1 then
    for i = 0 to n - 1 do
      fill i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          fill i;
          loop ()
        end
      in
      loop ()
    in
    let handles = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join handles
  end;
  out

let default_domains () = Tsg_util.Pool.default_domains ()

let run ?domains ~engine ~edge_labels ic oc =
  let domains = Option.value ~default:(default_domains ()) domains in
  let taxonomy = Store.taxonomy (Engine.store engine) in
  let names = Taxonomy.labels taxonomy in
  let requests = ref 0 and errors = ref 0 in
  let batch = ref [] in
  let flush () =
    let responses = flush_batch ~domains ~engine ~names !batch in
    batch := [];
    Array.iter
      (fun r ->
        if String.length r >= 5 && String.sub r 0 5 = "error" then incr errors;
        output_string oc r;
        output_char oc '\n')
      responses;
    flush oc
  in
  let quit = ref false in
  (try
     while not !quit do
       let line = input_line ic in
       match Protocol.parse ~taxonomy ~edge_labels line with
       | None -> ()
       | Some Protocol.Stats ->
         incr requests;
         flush ();
         output_string oc "begin stats\n";
         output_string oc (Metrics.render (Engine.metrics engine));
         output_char oc '\n';
         output_string oc "end stats\n";
         Stdlib.flush oc
       | Some Protocol.Quit ->
         incr requests;
         quit := true
       | Some (Protocol.(Contains _ | By_label _ | Top_k _) as q) ->
         incr requests;
         batch := `Query q :: !batch
       | exception Protocol.Parse_error msg ->
         incr requests;
         batch := `Error msg :: !batch
     done
   with End_of_file -> ());
  flush ();
  { requests = !requests; errors = !errors; quit = !quit }
