module Taxonomy = Tsg_taxonomy.Taxonomy
module Label = Tsg_graph.Label
module Pattern = Tsg_core.Pattern
module Metrics = Tsg_util.Metrics
module Fault = Tsg_util.Fault

type outcome = {
  requests : int;
  errors : int;
  quit : bool;
  disconnected : bool;
}

let no_outcome = { requests = 0; errors = 0; quit = false; disconnected = false }

type limits = { max_line_bytes : int; request_deadline_s : float option }

let default_limits =
  { max_line_bytes = Protocol.default_max_line_bytes; request_deadline_s = None }

let result_line ~names ~db_size ?score store id =
  let p = Store.pattern store id in
  let score =
    match score with
    | None -> ""
    | Some s -> Printf.sprintf " score %.4f" s
  in
  Printf.sprintf "p %d%s support %d/%d %s" id score p.Pattern.support_count
    db_size
    (Pattern.to_string ~names p)

let execute engine ~names query =
  let store = Engine.store engine in
  let db_size = Store.db_size store in
  let listing ids line =
    String.concat "\n"
      (Printf.sprintf "ok %d" (List.length ids) :: List.map line ids)
  in
  match query with
  | Protocol.Contains g ->
    let ids = Engine.contains engine g in
    listing ids (result_line ~names ~db_size store)
  | Protocol.By_label l ->
    let ids = Engine.by_label engine l in
    listing ids (result_line ~names ~db_size store)
  | Protocol.Top_k (k, order) -> (
    match Engine.top_k engine ~k order with
    | scored ->
      listing scored (fun (id, s) ->
          result_line ~names ~db_size ~score:s store id)
    | exception Failure msg -> "error " ^ msg)
  | Protocol.Stats | Protocol.Health | Protocol.Quit ->
    assert false (* barriers; see run *)

(* a request that blew its deadline, crashed, or drew an injected fault
   answers with an error line; the loop itself never dies for one request *)
let execute_guarded engine ~names ~limits ~deadline_c ~fault_c ~arrival query =
  let expired () =
    match limits.request_deadline_s with
    | None -> false
    | Some d -> Unix.gettimeofday () -. arrival >= d
  in
  if expired () then begin
    Metrics.incr deadline_c;
    "error deadline exceeded"
  end
  else
    match
      Fault.inject "serve.request";
      execute engine ~names query
    with
    | reply ->
      if expired () then begin
        Metrics.incr deadline_c;
        "error deadline exceeded"
      end
      else reply
    | exception Fault.Injected { site; hit } ->
      Metrics.incr fault_c;
      Printf.sprintf "error injected fault at %s (hit %d)" site hit
    | exception e -> "error internal: " ^ Printexc.to_string e

(* one response slot per request; workers pull indices off a shared
   counter — a flat batch has no subtrees to steal, so this stays simpler
   than Tsg_util.Pool. A worker failure is re-raised on the caller with
   the original backtrace (Domain.join alone would lose it). *)
let flush_batch ~domains ~fill batch =
  let batch = Array.of_list (List.rev batch) in
  let n = Array.length batch in
  let out = Array.make n "" in
  let run i = out.(i) <- fill batch.(i) in
  let domains = max 1 (min domains n) in
  if domains = 1 then
    for i = 0 to n - 1 do
      run i
    done
  else begin
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run i;
          loop ()
        end
      in
      try loop ()
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failure None (Some (e, bt)))
    in
    let handles = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join handles;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end;
  out

let default_domains () = Tsg_util.Pool.default_domains ()

(* read one request line without trusting its length: past [max_bytes]
   the rest of the line is drained (bounded memory) and the line reports
   as oversized. EOF with pending bytes yields them as a final line. *)
let read_bounded_line ic ~max_bytes =
  let buf = Buffer.create 128 in
  let rec go oversized =
    match input_char ic with
    | '\n' -> if oversized then `Too_long else `Line (Buffer.contents buf)
    | c ->
      if oversized || Buffer.length buf >= max_bytes then go true
      else begin
        Buffer.add_char buf c;
        go false
      end
    | exception End_of_file ->
      if oversized then `Too_long
      else if Buffer.length buf = 0 then raise End_of_file
      else `Line (Buffer.contents buf)
  in
  go false

let run ?domains ?(limits = default_limits) ~engine ~edge_labels ic oc =
  let domains = Option.value ~default:(default_domains ()) domains in
  let store = Engine.store engine in
  let taxonomy = Store.taxonomy store in
  let names = Taxonomy.labels taxonomy in
  let metrics = Engine.metrics engine in
  let oversized_c = Metrics.counter metrics "serve.oversized" in
  let deadline_c = Metrics.counter metrics "serve.deadline_expired" in
  let disconnect_c = Metrics.counter metrics "serve.disconnects" in
  let fault_c = Metrics.counter metrics "serve.injected_faults" in
  let health_c = Metrics.counter metrics "serve.health" in
  let started = Unix.gettimeofday () in
  let requests = ref 0 and errors = ref 0 in
  let disconnected = ref false in
  (* a peer that hangs up mid-reply (EPIPE with SIGPIPE ignored, reset
     sockets) must never kill the loop: note it, stop writing, drain out *)
  let safe_write f =
    if not !disconnected then
      try f ()
      with Sys_error _ ->
        disconnected := true;
        Metrics.incr disconnect_c
  in
  let batch = ref [] in
  let fill (arrival, item) =
    match item with
    | `Error msg -> "error " ^ msg
    | `Query q ->
      execute_guarded engine ~names ~limits ~deadline_c ~fault_c ~arrival q
  in
  let flush () =
    let responses = flush_batch ~domains ~fill !batch in
    batch := [];
    Array.iter
      (fun r ->
        if String.length r >= 5 && String.sub r 0 5 = "error" then incr errors;
        safe_write (fun () ->
            output_string oc r;
            output_char oc '\n'))
      responses;
    safe_write (fun () -> flush oc)
  in
  let quit = ref false in
  (try
     while (not !quit) && not !disconnected do
       match read_bounded_line ic ~max_bytes:limits.max_line_bytes with
       | `Too_long ->
         incr requests;
         Metrics.incr oversized_c;
         batch :=
           ( Unix.gettimeofday (),
             `Error
               (Printf.sprintf "request exceeds %d bytes"
                  limits.max_line_bytes) )
           :: !batch
       | `Line line -> (
         match
           Protocol.parse ~max_bytes:limits.max_line_bytes ~taxonomy
             ~edge_labels line
         with
         | None -> ()
         | Some Protocol.Stats ->
           incr requests;
           flush ();
           safe_write (fun () ->
               output_string oc "begin stats\n";
               output_string oc (Metrics.render metrics);
               output_char oc '\n';
               output_string oc "end stats\n";
               Stdlib.flush oc)
         | Some Protocol.Health ->
           incr requests;
           Metrics.incr health_c;
           flush ();
           safe_write (fun () ->
               Printf.fprintf oc "ok health patterns %d uptime %.3f\n"
                 (Store.size store)
                 (Unix.gettimeofday () -. started);
               Stdlib.flush oc)
         | Some Protocol.Quit ->
           incr requests;
           quit := true
         | Some (Protocol.(Contains _ | By_label _ | Top_k _) as q) ->
           incr requests;
           batch := (Unix.gettimeofday (), `Query q) :: !batch
         | exception Protocol.Parse_error msg ->
           incr requests;
           batch := (Unix.gettimeofday (), `Error msg) :: !batch)
     done
   with End_of_file -> ());
  flush ();
  {
    requests = !requests;
    errors = !errors;
    quit = !quit;
    disconnected = !disconnected;
  }

(* --- TCP mode ---------------------------------------------------------- *)

type listen_outcome = {
  connections : int;
  overloaded : int;
  aggregate : outcome;
}

let merge_outcome a b =
  {
    requests = a.requests + b.requests;
    errors = a.errors + b.errors;
    quit = a.quit || b.quit;
    disconnected = a.disconnected || b.disconnected;
  }

let ignore_sigpipe () =
  (* a write to a reset socket must surface as EPIPE, not kill the server *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let listen ?(limits = default_limits) ?(max_conns = 64) ?(drain_s = 5.0)
    ?on_listen ?(should_stop = fun () -> false) ~engine ~edge_labels ~port ()
    =
  ignore_sigpipe ();
  let metrics = Engine.metrics engine in
  let conns_c = Metrics.counter metrics "serve.connections" in
  let overloaded_c = Metrics.counter metrics "serve.overloaded" in
  let disconnect_c = Metrics.counter metrics "serve.disconnects" in
  (* Protocol.parse interns edge labels, and Label.t is not thread-safe:
     every connection parses against its own copy of the table. A label
     first seen on some other connection simply matches no stored pattern
     on this one — exactly what an unseen label means anyway. *)
  let label_names = Array.to_list (Label.names edge_labels) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let actual_port =
    try
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen sock 64;
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> port
    with e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e
  in
  Option.iter (fun f -> f actual_port) on_listen;
  let active = Atomic.make 0 in
  let agg_lock = Mutex.create () in
  let connections = ref 0 in
  let overloaded = ref 0 in
  let aggregate = ref no_outcome in
  let handle fd =
    let finished o =
      Mutex.lock agg_lock;
      aggregate := merge_outcome !aggregate o;
      Mutex.unlock agg_lock;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.decr active
    in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let conn_labels = Label.of_names label_names in
    match run ~domains:1 ~limits ~engine ~edge_labels:conn_labels ic oc with
    | o ->
      (try flush oc with Sys_error _ -> ());
      finished o
    | exception _ ->
      (* a connection torn down mid-read (ECONNRESET and friends) *)
      Metrics.incr disconnect_c;
      finished { no_outcome with disconnected = true }
  in
  let running = ref true in
  while !running do
    if should_stop () then running := false
    else begin
      match Unix.select [ sock ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept sock with
        | fd, _ ->
          incr connections;
          Metrics.incr conns_c;
          if Atomic.get active >= max_conns then begin
            (* load shedding: tell the client and hang up *)
            incr overloaded;
            Metrics.incr overloaded_c;
            (try ignore (Unix.write_substring fd "OVERLOADED\n" 0 11)
             with Unix.Unix_error _ -> ());
            try Unix.close fd with Unix.Unix_error _ -> ()
          end
          else begin
            Atomic.incr active;
            ignore (Thread.create handle fd)
          end
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (* graceful drain: in-flight connections get [drain_s] to finish *)
  let t0 = Unix.gettimeofday () in
  while Atomic.get active > 0 && Unix.gettimeofday () -. t0 < drain_s do
    Thread.delay 0.02
  done;
  Mutex.lock agg_lock;
  let aggregate = !aggregate in
  Mutex.unlock agg_lock;
  { connections = !connections; overloaded = !overloaded; aggregate }
